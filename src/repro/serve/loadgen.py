"""A deterministic load generator for the solve daemon.

Benchmarks and the CI smoke job need *reproducible* offered load: the
same request mix, in the same per-worker order, every run.
:func:`request_sequence` derives the mix from a seeded
:class:`random.Random` over an instance grid, and :func:`run_load`
partitions it round-robin across worker threads — worker *i* always
sends the same subsequence — so two runs against equivalent daemons
offer byte-identical traffic.

While driving load the generator also *audits* the daemon:

* every response is checked against the
  ``repro.serve/response/v1`` schema
  (:func:`~repro.serve.protocol.validate_response`);
* results are checked for the bit-identical cache contract — all
  responses for the same instance key must serialise to the same
  canonical JSON, cached or not.

* every ok solve response must carry a daemon-issued ``trace`` ID, and
  no two responses may share one — traces are issued per request, so a
  duplicate means the correlation chain is broken.

The report (``repro.serve/load-report/v1``) carries throughput,
client-side latency percentiles, the daemon's own ``stats`` snapshot
(cache hit rate), and any violations found.  Latency percentiles come
from per-worker :class:`~repro.obs.metrics.Histogram` objects merged
exactly in the parent (the same machinery ``--jobs N`` uses for
counters), and the merged histogram rides along in record form as
``latency_histogram``.  ``BENCH_serve.json`` and the ``serve-smoke``
CI job are both built on it; the workflow is documented in
``docs/serving.md``.
"""

from __future__ import annotations

import json
import random
import threading
from time import perf_counter

from ..obs.metrics import Histogram
from .client import ServeClient
from .protocol import solve_request, validate_response

__all__ = ["LOAD_REPORT_SCHEMA_ID", "request_sequence", "run_load"]

LOAD_REPORT_SCHEMA_ID = "repro.serve/load-report/v1"


def request_sequence(
    ns: list[int],
    seeds: list[int],
    requests: int,
    *,
    side: float | None = None,
    algorithm: str = "greedy",
    kernel: str = "auto",
    rng_seed: int = 0,
) -> list[dict]:
    """``requests`` solve requests drawn uniformly from the grid.

    The draw is a seeded :class:`random.Random`, so the sequence is a
    pure function of the arguments.  With ``requests`` larger than the
    grid (``len(ns) * len(seeds)`` distinct instances) the sequence
    necessarily repeats instances — that is the point: repeats are what
    exercise the cache and the single-flight path.
    """
    if not ns or not seeds:
        raise ValueError("ns and seeds must be non-empty")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    rng = random.Random(rng_seed)
    grid = [(n, seed) for n in ns for seed in seeds]
    sequence = []
    for i in range(requests):
        n, seed = grid[rng.randrange(len(grid))]
        sequence.append(
            solve_request(
                f"load-{i}",
                n=n,
                side=side,
                seed=seed,
                algorithm=algorithm,
                kernel=kernel,
            )
        )
    return sequence


class _Worker(threading.Thread):
    """One client connection driving its share of the sequence."""

    def __init__(self, address, requests: list[dict], timeout: float):
        super().__init__(daemon=True)
        self.address = address
        self.requests = requests
        self.timeout = timeout
        self.responses: list[dict] = []
        self.histogram = Histogram("load.latency")
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            with ServeClient(self.address, timeout=self.timeout) as client:
                for request in self.requests:
                    t0 = perf_counter()
                    response = client.request(request)
                    self.histogram.observe(perf_counter() - t0)
                    self.responses.append(response)
        except BaseException as exc:  # noqa: BLE001 - reported in the report
            self.error = exc


def _result_key(request: dict) -> str:
    """Instance identity for the bit-identity audit (spec requests)."""
    instance = request["instance"]
    return (
        f"n={instance['n']};side={instance.get('side')!r};"
        f"seed={instance['seed']};"
        f"algo={request['algorithm']};kernel={request['kernel']}"
    )


def run_load(
    address: tuple[str, int] | str,
    sequence: list[dict],
    *,
    concurrency: int = 4,
    timeout: float = 120.0,
) -> dict:
    """Drive ``sequence`` at the daemon; return the audit/latency report.

    The sequence is partitioned round-robin over ``concurrency`` worker
    threads (one persistent connection each), so the per-worker request
    order is deterministic.  Latency is measured client-side,
    request-to-response.  Raises ``RuntimeError`` if any worker dies on
    a transport error; protocol and bit-identity violations do *not*
    raise — they land in the report for the caller to gate on.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    workers = [
        _Worker(address, sequence[i::concurrency], timeout)
        for i in range(min(concurrency, len(sequence)))
    ]
    t0 = perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = perf_counter() - t0
    failures = [w.error for w in workers if w.error is not None]
    if failures:
        raise RuntimeError(f"load worker failed: {failures[0]!r}")

    schema_violations: list[dict] = []
    identity_violations: list[dict] = []
    trace_violations: list[dict] = []
    canonical: dict[str, str] = {}  # instance key -> canonical result JSON
    seen_traces: dict[int, str] = {}  # trace -> request id that first used it
    responses = 0
    errors = 0
    cache_hits = 0
    for worker in workers:
        for request, response in zip(worker.requests, worker.responses):
            responses += 1
            violations = validate_response(response)
            if violations:
                schema_violations.append(
                    {"id": request["id"], "violations": violations}
                )
                continue
            if response["status"] == "error":
                errors += 1
                continue
            trace = response.get("trace")
            if trace is None:
                trace_violations.append(
                    {"id": request["id"], "reason": "missing trace"}
                )
            elif trace in seen_traces:
                trace_violations.append(
                    {
                        "id": request["id"],
                        "reason": f"trace {trace} already used by"
                        f" {seen_traces[trace]}",
                    }
                )
            else:
                seen_traces[trace] = request["id"]
            cache_hits += 1 if response["cached"] else 0
            key = _result_key(request)
            rendered = json.dumps(response["result"], sort_keys=True)
            previous = canonical.setdefault(key, rendered)
            if rendered != previous:
                identity_violations.append(
                    {"id": request["id"], "key": key}
                )

    merged = Histogram("load.latency")
    for worker in workers:
        merged.merge(worker.histogram)
    with ServeClient(address, timeout=timeout) as client:
        server_stats = client.stats().get("stats", {})
    cache = server_stats.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    clean = (
        not schema_violations
        and not identity_violations
        and not trace_violations
        and not errors
    )
    return {
        "schema": LOAD_REPORT_SCHEMA_ID,
        "requests": responses,
        "concurrency": len(workers),
        "elapsed_seconds": elapsed,
        "requests_per_second": responses / elapsed if elapsed > 0 else 0.0,
        "errors": errors,
        "cache_hits_observed": cache_hits,
        "latency_seconds": {
            "count": merged.count,
            "mean": merged.mean,
            "p50": merged.percentile(50),
            "p90": merged.percentile(90),
            "p95": merged.percentile(95),
            "p99": merged.percentile(99),
            "max": merged.max if merged.max is not None else 0.0,
        },
        "latency_histogram": merged.to_record(),
        "server": {
            "stats": server_stats,
            "cache_hit_rate": cache.get("hits", 0) / lookups if lookups else 0.0,
        },
        "schema_violations": schema_violations,
        "identity_violations": identity_violations,
        "trace_violations": trace_violations,
        "ok": clean,
    }
