"""A small blocking client for the solve daemon.

One persistent socket, newline-delimited JSON both ways, responses in
request order — which is all the protocol requires, so the client is a
thin convenience over :mod:`socket`: build a request with the
:mod:`~repro.serve.protocol` builders, send a line, read a line.  Used
by ``python -m repro serve-client``, the load generator, and the tests.
"""

from __future__ import annotations

import json
import socket
from itertools import count

from .protocol import control_request, solve_request

__all__ = ["parse_address", "ServeClient"]


def parse_address(text: str) -> tuple[str, int] | str:
    """``"host:port"`` → a TCP tuple; anything else → a Unix path.

    A lone ``":port"`` binds the loopback host.  Paths never contain a
    ``name:digits`` tail, so the discrimination is unambiguous in
    practice (use ``./name:8000`` in the unlikely collision).
    """
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit() and "/" not in port:
        return (host or "127.0.0.1", int(port))
    return text


class ServeClient:
    """A synchronous connection to one daemon.

    ``address`` is a ``(host, port)`` tuple or a Unix-socket path (see
    :func:`parse_address`).  Request ids are auto-assigned
    (``c-1``, ``c-2``, ...) unless given.  Usable as a context manager.
    """

    def __init__(self, address: tuple[str, int] | str, timeout: float = 60.0):
        self.address = address
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address)
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = count(1)

    # -- plumbing -----------------------------------------------------

    def request(self, obj: dict) -> dict:
        """Send one request object, return the parsed response."""
        self._file.write((json.dumps(obj, sort_keys=True) + "\n").encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _next_id(self, request_id: str | None) -> str:
        return request_id if request_id is not None else f"c-{next(self._ids)}"

    # -- operations ---------------------------------------------------

    def solve(self, request_id: str | None = None, **kwargs) -> dict:
        """Solve a spec (``n=...``) or inline (``edges=...``) instance.

        Keyword arguments are those of
        :func:`repro.serve.protocol.solve_request`.
        """
        return self.request(solve_request(self._next_id(request_id), **kwargs))

    def ping(self) -> dict:
        return self.request(control_request(self._next_id(None), "ping"))

    def stats(self) -> dict:
        return self.request(control_request(self._next_id(None), "stats"))

    def shutdown(self) -> dict:
        """Ask the daemon to drain; the ack arrives before it exits."""
        return self.request(control_request(self._next_id(None), "shutdown"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
