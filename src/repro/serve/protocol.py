"""The wire protocol: ``repro.serve/request/v1`` / ``response/v1``.

The daemon speaks newline-delimited JSON: one request object per line
in, one response object per line out, always in request order per
connection.  Both shapes are versioned and validated in-repo, exactly
like the :mod:`repro.obs.record` RunRecord — no third-party jsonschema
dependency.

A **request** names an operation (``op``) and, for solves, the
instance plus algorithm/kernel selection::

    {"schema": "repro.serve/request/v1", "id": "r-1", "op": "solve",
     "instance": {"kind": "spec", "n": 60, "side": 6.2, "seed": 2},
     "algorithm": "greedy", "kernel": "auto", "cache": true}

    {"schema": "repro.serve/request/v1", "id": "r-2", "op": "solve",
     "instance": {"kind": "edges", "nodes": 4,
                  "edges": [[0, 1], [1, 2], [2, 3]]},
     "algorithm": "waf"}

Control operations take no instance: ``{"op": "ping"}``,
``{"op": "stats"}``, ``{"op": "shutdown"}`` (plus ``schema`` and
``id``).

A **response** echoes the request ``id`` and carries exactly one of
``result`` (ok) or ``error`` (structured failure — the connection
stays open either way)::

    {"schema": "repro.serve/response/v1", "id": "r-1", "status": "ok",
     "cached": false, "batch": 3, "fingerprint": "ab12...",
     "elapsed": 0.0041,
     "result": {"n": 60, "side": 6.2, "seed": 2, "algorithm":
                "greedy-connector", "cds_size": 21, "dominators": 14,
                "connectors": 7, "counters": {...}}}

    {"schema": "repro.serve/response/v1", "id": "r-3",
     "status": "error",
     "error": {"type": "ValueError", "message": "...", "index": 0,
               "item": "..."}}

**Bit-identity contract:** the ``result`` object is deterministic per
(instance, algorithm, kernel) — a cached response's ``result`` is
byte-for-byte the JSON of a cold solve's (tested).  The transport
fields around it (``id``, ``cached``, ``coalesced``, ``batch``,
``elapsed``, and the per-request ``trace`` ID) describe *this*
exchange and are excluded from the guarantee.  See ``docs/serving.md``.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "REQUEST_SCHEMA_ID",
    "RESPONSE_SCHEMA_ID",
    "REQUEST_OPS",
    "solve_request",
    "control_request",
    "validate_request",
    "normalize_request",
    "validate_response",
    "assert_valid_response",
]

#: Version tags; bump on breaking shape change.
REQUEST_SCHEMA_ID = "repro.serve/request/v1"
RESPONSE_SCHEMA_ID = "repro.serve/response/v1"

#: Operations a request may name.  ``solve`` is the workload; the
#: control ops support liveness probes, metrics scraping and graceful
#: drain (see the ops runbook in ``docs/serving.md``).
REQUEST_OPS = ("solve", "ping", "stats", "shutdown")

_INSTANCE_KINDS = ("spec", "edges")
_KERNELS = ("auto", "indexed", "bitset", "array")


# -- builders ---------------------------------------------------------


def solve_request(
    request_id: str,
    *,
    n: int | None = None,
    side: float | None = None,
    seed: int = 0,
    edges: list | None = None,
    nodes: int | None = None,
    algorithm: str = "greedy",
    kernel: str = "auto",
    cache: bool = True,
) -> dict:
    """Build a solve request — spec (``n=...``) or inline ``edges=...``."""
    if (n is None) == (edges is None):
        raise ValueError("give exactly one of n= (spec) or edges= (inline)")
    if n is not None:
        instance: dict = {"kind": "spec", "n": n, "seed": seed}
        if side is not None:
            instance["side"] = side
    else:
        if nodes is None:
            nodes = 1 + max((max(u, v) for u, v in edges), default=0)
        instance = {"kind": "edges", "nodes": nodes,
                    "edges": [list(e) for e in edges]}
    return {
        "schema": REQUEST_SCHEMA_ID,
        "id": request_id,
        "op": "solve",
        "instance": instance,
        "algorithm": algorithm,
        "kernel": kernel,
        "cache": cache,
    }


def control_request(request_id: str, op: str) -> dict:
    """Build a ``ping`` / ``stats`` / ``shutdown`` request."""
    if op not in REQUEST_OPS or op == "solve":
        raise ValueError(f"not a control op: {op!r}")
    return {"schema": REQUEST_SCHEMA_ID, "id": request_id, "op": op}


# -- request validation -----------------------------------------------


def _check_int(value: object, minimum: int | None = None) -> bool:
    return (
        not isinstance(value, bool)
        and isinstance(value, int)
        and (minimum is None or value >= minimum)
    )


def _check_number(value: object) -> bool:
    return not isinstance(value, bool) and isinstance(value, (int, float))


def _validate_instance(instance: object, errors: list[str]) -> None:
    if not isinstance(instance, Mapping):
        errors.append("instance must be an object")
        return
    kind = instance.get("kind")
    if kind not in _INSTANCE_KINDS:
        errors.append(
            f"instance.kind must be one of {_INSTANCE_KINDS}, got {kind!r}"
        )
        return
    if kind == "spec":
        if not _check_int(instance.get("n"), 1):
            errors.append("instance.n must be an integer >= 1")
        if not _check_int(instance.get("seed")):
            errors.append("instance.seed must be an integer")
        side = instance.get("side")
        if side is not None and not (_check_number(side) and side > 0):
            errors.append("instance.side must be a number > 0 (or omitted)")
        return
    nodes = instance.get("nodes")
    if not _check_int(nodes, 1):
        errors.append("instance.nodes must be an integer >= 1")
        nodes = None
    edges = instance.get("edges")
    if not isinstance(edges, list):
        errors.append("instance.edges must be a list of [u, v] pairs")
        return
    for i, edge in enumerate(edges):
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(_check_int(v, 0) for v in edge)
        ):
            errors.append(
                f"instance.edges[{i}] must be a pair of node ids >= 0"
            )
            continue
        u, v = edge
        if u == v:
            errors.append(f"instance.edges[{i}] is a self-loop ({u})")
        if nodes is not None and (u >= nodes or v >= nodes):
            errors.append(
                f"instance.edges[{i}] names node >= nodes={nodes}"
            )


def validate_request(obj: object) -> list[str]:
    """Schema-check a parsed request; returns violations (empty = ok)."""
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return [f"request must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != REQUEST_SCHEMA_ID:
        errors.append(
            f"schema must be {REQUEST_SCHEMA_ID!r}, got {obj.get('schema')!r}"
        )
    request_id = obj.get("id")
    if not isinstance(request_id, str) or not request_id:
        errors.append("id must be a non-empty string")
    op = obj.get("op")
    if op not in REQUEST_OPS:
        errors.append(f"op must be one of {REQUEST_OPS}, got {op!r}")
        return errors
    if op != "solve":
        return errors
    _validate_instance(obj.get("instance"), errors)
    algorithm = obj.get("algorithm", "greedy")
    if not isinstance(algorithm, str) or not algorithm:
        errors.append("algorithm must be a non-empty string")
    kernel = obj.get("kernel", "auto")
    if kernel not in _KERNELS:
        errors.append(f"kernel must be one of {_KERNELS}, got {kernel!r}")
    if not isinstance(obj.get("cache", True), bool):
        errors.append("cache must be a boolean")
    return errors


def normalize_request(obj: Mapping) -> dict:
    """Validate and canonicalise a request for fingerprinting/solving.

    Defaults are applied (``algorithm``/``kernel``/``cache``, the
    density-preserving ``side`` for spec instances), and inline edge
    lists are canonicalised — endpoints sorted within each edge, edges
    sorted and deduplicated — so two requests describing the same graph
    in different edge orders share one fingerprint (and therefore one
    cache entry).

    Raises:
        ValueError: listing every schema violation.
    """
    errors = validate_request(obj)
    if errors:
        raise ValueError("invalid request: " + "; ".join(errors))
    normalized: dict = {
        "schema": REQUEST_SCHEMA_ID,
        "id": obj["id"],
        "op": obj["op"],
    }
    if obj["op"] != "solve":
        return normalized
    instance = dict(obj["instance"])
    if instance["kind"] == "spec":
        if instance.get("side") is None:
            from ..experiments.instances import default_side

            instance["side"] = default_side(instance["n"])
        else:
            instance["side"] = float(instance["side"])
    else:
        instance["edges"] = sorted(
            {(min(u, v), max(u, v)) for u, v in instance["edges"]}
        )
        instance["edges"] = [list(e) for e in instance["edges"]]
    normalized["instance"] = instance
    normalized["algorithm"] = obj.get("algorithm", "greedy")
    normalized["kernel"] = obj.get("kernel", "auto")
    normalized["cache"] = obj.get("cache", True)
    return normalized


# -- response validation ----------------------------------------------


def validate_response(obj: object) -> list[str]:
    """Schema-check a parsed response; returns violations (empty = ok)."""
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return [f"response must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != RESPONSE_SCHEMA_ID:
        errors.append(
            f"schema must be {RESPONSE_SCHEMA_ID!r}, "
            f"got {obj.get('schema')!r}"
        )
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, str):
        errors.append("id must be a string or null (unparseable request)")
    status = obj.get("status")
    if status not in ("ok", "error"):
        errors.append(f"status must be 'ok' or 'error', got {status!r}")
        return errors
    trace = obj.get("trace")
    if trace is not None and (
        isinstance(trace, bool) or not isinstance(trace, int) or trace < 1
    ):
        errors.append("trace must be an integer >= 1 when present")
    if status == "error":
        error = obj.get("error")
        if not isinstance(error, Mapping):
            errors.append("error responses must carry an 'error' object")
        else:
            for key in ("type", "message"):
                if not isinstance(error.get(key), str):
                    errors.append(f"error.{key} must be a string")
        if "result" in obj:
            errors.append("error responses must not carry 'result'")
        return errors
    if "error" in obj:
        errors.append("ok responses must not carry 'error'")
    op = obj.get("op", "solve")
    if op != "solve":
        return errors
    result = obj.get("result")
    if not isinstance(result, Mapping):
        errors.append("ok solve responses must carry a 'result' object")
    else:
        for key in ("algorithm", "cds_size", "dominators", "connectors"):
            if key not in result:
                errors.append(f"result: missing {key!r}")
        if not isinstance(result.get("counters", {}), Mapping):
            errors.append("result.counters must be an object")
    if not isinstance(obj.get("fingerprint"), str):
        errors.append("ok solve responses must carry the 'fingerprint'")
    if not isinstance(obj.get("cached"), bool):
        errors.append("ok solve responses must carry boolean 'cached'")
    batch = obj.get("batch")
    if isinstance(batch, bool) or not isinstance(batch, int) or batch < 0:
        errors.append("batch must be an integer >= 0")
    elapsed = obj.get("elapsed")
    if not _check_number(elapsed) or elapsed < 0:
        errors.append("elapsed must be a number >= 0")
    return errors


def assert_valid_response(obj: object) -> None:
    """Raise ``ValueError`` listing every schema violation in ``obj``."""
    errors = validate_response(obj)
    if errors:
        raise ValueError("invalid response: " + "; ".join(errors))
