"""The fingerprint-keyed result cache behind the solve daemon.

The checkpoint ledger (:mod:`repro.reliability.checkpoint`) already
answers "have we solved this cell before?" for sweeps: every cell has a
stable identity string and the sweep a SHA-256 fingerprint over
``(label, keys)``.  The serve cache reuses exactly that machinery —
:func:`request_key` renders a solve request as the *same* cell-key
string a sweep over that grid would journal (``n=60;side=6.2;seed=2``),
and :func:`request_fingerprint` runs it through
:func:`repro.reliability.checkpoint.grid_fingerprint` under the same
``solve:<algorithm>:<kernel>`` label :func:`solve_cells_resilient`
pins into its ledgers.  A cell a sweep has solved and a request the
daemon has served therefore agree on identity byte-for-byte.

:class:`ResultCache` is a plain in-process LRU over those
fingerprints.  Values are the deterministic solve summaries (see
:func:`repro.experiments.parallel.solve_cell`), so a hit is
*bit-identical* to a cold solve — the whole point of caching
deterministic work.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Mapping

from ..experiments.parallel import SweepCell, cell_key
from ..reliability.checkpoint import grid_fingerprint

__all__ = [
    "request_key",
    "request_label",
    "request_fingerprint",
    "ResultCache",
]


def request_key(request: Mapping) -> str:
    """The cell-identity string of a normalized solve request.

    Spec instances render exactly as the sweep runner's
    :func:`~repro.experiments.parallel.cell_key`; inline edge lists
    hash their canonical form (the normalizer sorts and dedupes them)
    so the key stays short whatever the graph size.
    """
    instance = request["instance"]
    if instance["kind"] == "spec":
        return cell_key(
            SweepCell(
                n=instance["n"], side=instance["side"], seed=instance["seed"]
            )
        )
    payload = json.dumps(
        [instance["nodes"], instance["edges"]], separators=(",", ":")
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return f"nodes={instance['nodes']};edges=sha256:{digest}"


def request_label(request: Mapping) -> str:
    """The sweep-label a request solves under: ``solve:<algo>:<kernel>``."""
    return f"solve:{request['algorithm']}:{request['kernel']}"


def request_fingerprint(request: Mapping) -> str:
    """The cache key: checkpoint-style fingerprint of (label, cell key).

    Any change to the instance spec, the algorithm or the pinned kernel
    changes the fingerprint, so a stale entry can never answer for a
    different computation — the serve-side mirror of the ledger's
    resume-refusal contract.
    """
    return grid_fingerprint([request_key(request)], request_label(request))


class ResultCache:
    """A bounded LRU of fingerprint → solve summary.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``capacity`` is exceeded.  ``capacity <= 0`` disables
    storage entirely (every ``get`` misses), which keeps the daemon's
    cache-off mode on the same code path.

    The cache is deliberately value-opaque: it never copies or mutates
    stored summaries.  Callers treat results as frozen — the server
    serialises them straight onto the wire, which is what makes the
    bit-identical guarantee hold by construction.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str):
        """The cached summary, or ``None`` (a miss is counted)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, fingerprint: str, result: object) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity."""
        if self.capacity <= 0:
            return
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        self._entries[fingerprint] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """A JSON-ready snapshot for the ``stats`` op and drain report."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
