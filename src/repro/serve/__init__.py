"""Solver-as-a-service: the long-lived batching daemon.

``python -m repro serve`` keeps one warm process answering CDS solve
requests over newline-delimited JSON (TCP or Unix socket), instead of
paying the CLI's import/build/solve cost per invocation.  Repeat
requests hit an in-process LRU cache keyed by the reliability
subsystem's checkpoint fingerprints — a cached response is
bit-identical to a cold solve — and concurrent misses coalesce into
batches that run through the sweep machinery in
:mod:`repro.experiments.parallel`.

Layout:

* :mod:`~repro.serve.protocol` — the ``repro.serve/request/v1`` /
  ``response/v1`` wire schemas with in-repo validators.
* :mod:`~repro.serve.cache` — fingerprinting (shared with the sweep
  checkpoint ledger) and the LRU result cache.
* :mod:`~repro.serve.server` — the asyncio daemon: batcher,
  single-flight, graceful drain, always-on metrics.
* :mod:`~repro.serve.client` — a small blocking client for scripts,
  tests and ``python -m repro serve-client``.
* :mod:`~repro.serve.loadgen` — the deterministic load generator
  behind ``serve-client --loadgen`` and ``BENCH_serve.json``.

Protocol reference and ops runbook: ``docs/serving.md``; where the
daemon sits in the stack: ``docs/architecture.md``.
"""

from .cache import ResultCache, request_fingerprint, request_key, request_label
from .client import ServeClient, parse_address
from .loadgen import LOAD_REPORT_SCHEMA_ID, request_sequence, run_load
from .protocol import (
    REQUEST_OPS,
    REQUEST_SCHEMA_ID,
    RESPONSE_SCHEMA_ID,
    assert_valid_response,
    control_request,
    normalize_request,
    solve_request,
    validate_request,
    validate_response,
)
from .server import (
    ServeConfig,
    ServerStats,
    ServerThread,
    SolveServer,
    run_server,
    serve_cell,
    solve_batch,
)

__all__ = [
    "REQUEST_SCHEMA_ID",
    "RESPONSE_SCHEMA_ID",
    "REQUEST_OPS",
    "LOAD_REPORT_SCHEMA_ID",
    "solve_request",
    "control_request",
    "validate_request",
    "normalize_request",
    "validate_response",
    "assert_valid_response",
    "request_key",
    "request_label",
    "request_fingerprint",
    "ResultCache",
    "ServeConfig",
    "ServerStats",
    "SolveServer",
    "ServerThread",
    "serve_cell",
    "solve_batch",
    "run_server",
    "ServeClient",
    "parse_address",
    "request_sequence",
    "run_load",
]
