"""The solve daemon: asyncio NDJSON server with batching and caching.

``python -m repro serve`` keeps one long-lived process warm — imports
done, kernels selected, results cached — so the request path stops
paying the per-invocation rebuild cost of the CLI.  The moving parts:

* **Connections** (:meth:`SolveServer._handle`): newline-delimited JSON
  over TCP or a Unix socket.  Every request line gets exactly one
  response line, in order; malformed or invalid lines produce
  structured ``status: "error"`` responses and the connection *stays
  open*.
* **Cache** (:class:`~repro.serve.cache.ResultCache`): solve requests
  are fingerprinted with the checkpoint subsystem's
  :func:`~repro.reliability.checkpoint.grid_fingerprint`; a previously
  solved cell is answered immediately, bit-identical to the cold solve.
* **Single-flight**: concurrent identical requests coalesce onto one
  in-flight solve — the followers await the leader's future instead of
  enqueueing duplicates.
* **Batching** (:meth:`SolveServer._batcher`): cache misses enter a
  queue; the batcher collects everything arriving within
  ``batch_window`` seconds (up to ``batch_max``) and runs the batch
  through the existing :func:`repro.experiments.parallel.parallel_map`
  machinery in a worker thread, with ``jobs`` solver processes.
* **Failure containment** (:func:`solve_batch`): ``parallel_map`` is
  fail-fast — one bad cell raises a
  :class:`~repro.reliability.failures.CellError` that would otherwise
  poison its batchmates.  The daemon catches it, re-runs the batch
  cell-by-cell, and turns each failing cell's ``CellError`` context
  into that request's structured error response while the good cells
  still answer normally.
* **Metrics** (:class:`ServerStats`): always-on request/cache/batch
  tallies, a latency reservoir, and wall/queue/solve-time
  :class:`~repro.obs.metrics.Histogram` distributions.  The ``stats``
  op folds a *live* copy (:meth:`SolveServer.metrics_registry`) so
  mid-run percentiles are accurate, and the same fold feeds the
  ``--metrics-port`` Prometheus exposition and the ``--metrics-out``
  snapshot stream (:mod:`repro.obs.expose`); at drain the daemon folds
  everything into the :data:`repro.obs.OBS` registry (``serve.*``
  counters, timers and histograms plus the merged solver counters) so
  ``--trace`` / ``--stats-out`` / ``--events-out`` work exactly as on
  the other CLI modes.
* **Trace IDs**: every solve request gets a monotonically increasing
  integer ``trace``, carried through the batcher and the single-flight
  future and echoed in the response.  Each completed request emits a
  ``serve.request`` obs *note* with its trace, and each batch a
  ``serve.batch`` note listing the traces it solved — so one request
  correlates with its batch solve in ``--events-out`` even when
  coalesced or batched with others.

Protocol reference, cache semantics and the ops runbook:
``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping

from ..obs import OBS
from ..obs.core import Registry
from ..obs.metrics import Histogram
from ..reliability.failures import CellError
from .cache import ResultCache, request_fingerprint
from .protocol import (
    REQUEST_OPS,
    RESPONSE_SCHEMA_ID,
    normalize_request,
)

__all__ = [
    "ServeConfig",
    "ServerStats",
    "SolveServer",
    "ServerThread",
    "serve_cell",
    "solve_batch",
    "percentile",
    "run_server",
]

#: Queue sentinel: drain is complete once the batcher consumes it.
_STOP = object()

#: Latency reservoir bound — enough for stable p99 at bench loads
#: without unbounded growth on a long-lived daemon.
_LATENCY_RESERVOIR = 100_000


def percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty list)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without math
    return ordered[int(rank) - 1]


# -- the solve worker (module-level: picklable for parallel_map) ------


def serve_cell(request: Mapping) -> dict:
    """Solve one normalized request; deterministic, picklable summary.

    Spec instances delegate to the sweep runner's
    :func:`~repro.experiments.parallel.solve_cell`, so a served cell's
    summary — sizes *and* operation counters — is byte-identical to the
    same cell solved by ``python -m repro sweep``.  Inline edge lists
    build an integer-labeled graph and produce the analogous summary.

    Raises:
        ValueError: for an unknown algorithm, a kernel pin the
            algorithm does not accept, or a disconnected edge instance
            — all surfaced to the client as structured error responses.
    """
    from ..cli import _solver_registry
    from ..experiments.parallel import SweepCell, solve_cell

    instance = request["instance"]
    algorithm = request["algorithm"]
    if algorithm not in _solver_registry():
        # Pre-check so both instance kinds report an unknown algorithm
        # the same way (solve_cell would surface a bare KeyError).
        raise ValueError(f"unknown algorithm {algorithm!r}")
    kernel = None if request["kernel"] == "auto" else request["kernel"]
    if instance["kind"] == "spec":
        cell = SweepCell(
            n=instance["n"], side=instance["side"], seed=instance["seed"]
        )
        return solve_cell(cell, algorithm=algorithm, kernel=kernel)
    return _solve_edges(instance, algorithm, kernel)


def _solve_edges(instance: Mapping, algorithm: str, kernel: str | None) -> dict:
    import inspect

    from ..cli import _solver_registry
    from ..graphs.graph import Graph
    from ..graphs.traversal import is_connected

    solver = _solver_registry()[algorithm]
    kwargs = {}
    if kernel is not None:
        if "kernel" not in inspect.signature(solver).parameters:
            raise ValueError(
                f"algorithm {algorithm!r} does not take a kernel "
                "(only the kernelized solvers: waf, greedy)"
            )
        kwargs["kernel"] = kernel
    graph: Graph = Graph()
    for node in range(instance["nodes"]):
        graph.add_node(node)
    for u, v in instance["edges"]:
        graph.add_edge(u, v)
    if not is_connected(graph):
        raise ValueError(
            "edge instance is disconnected (a CDS requires a connected "
            "graph); submit one component per request"
        )
    with OBS.capture() as reg:
        result = solver(graph, **kwargs)
        counters = reg.counters()
    summary = {
        "nodes": len(graph),
        "edges": graph.edge_count(),
        "algorithm": result.algorithm,
        "cds_size": result.size,
        "dominators": len(result.dominators),
        "connectors": len(result.connectors),
        "counters": counters,
    }
    if kernel is not None:
        summary["kernel"] = kernel
    return summary


def _warm_worker(_: int) -> None:
    """Pool warm-up task: pay the child-side import cost up front."""
    from ..experiments.parallel import solve_cell  # noqa: F401


def solve_batch(requests: list[dict], jobs: int, pool=None) -> list[dict]:
    """Run one batch through ``parallel_map``; failures become data.

    Returns one outcome per request, in order: ``{"ok": summary}`` or
    ``{"error": {...}, "fallback": True}``.  The happy path is a single
    :func:`~repro.experiments.parallel.parallel_map` over the batch;
    when that fail-fast map aborts with a
    :class:`~repro.reliability.failures.CellError`, the batch is
    re-run cell-by-cell so each failing request gets *its own* error —
    carrying the CellError context (exception type, message, item repr,
    batch index) — and its batchmates still get results.
    """
    from ..experiments.parallel import parallel_map

    try:
        results = parallel_map(serve_cell, requests, jobs=jobs, pool=pool)
        return [{"ok": result} for result in results]
    except CellError:
        pass
    outcomes: list[dict] = []
    for index, request in enumerate(requests):
        try:
            outcomes.append({"ok": serve_cell(request)})
        except Exception as exc:  # noqa: BLE001 - reported to the client
            err = CellError.wrap(request, index, exc)
            outcomes.append(
                {
                    "error": {
                        "type": err.error_type,
                        "message": err.error_message,
                        "item": err.item_repr,
                        "index": err.index,
                    },
                    "fallback": True,
                }
            )
    return outcomes


# -- configuration and metrics ----------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """One daemon's knobs (defaults match ``python -m repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 0
    socket_path: str | None = None  # Unix socket; overrides host/port
    jobs: int = 1                   # solver processes per batch
    batch_window: float = 0.005     # seconds the batcher waits to coalesce
    batch_max: int = 32             # hard batch-size cap
    cache_size: int = 1024          # LRU entries; 0 disables caching
    max_line_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")


@dataclass
class ServerStats:
    """Always-on serving metrics (independent of the obs enable flag)."""

    requests: int = 0
    ops: dict = field(default_factory=dict)        # op -> count
    errors: int = 0
    cells_solved: int = 0
    coalesced: int = 0
    batches: int = 0
    batch_cells: int = 0
    batch_max: int = 0
    batch_fallbacks: int = 0
    latencies: list = field(default_factory=list)  # solve-request seconds
    batch_seconds: list = field(default_factory=list)
    # Live latency distributions (docs/observability.md §7): wall is
    # request arrival -> response, queue is enqueue -> batch start,
    # solve is the batch solve duration charged to each of its cells.
    wall: Histogram = field(
        default_factory=lambda: Histogram("serve.latency.wall")
    )
    queue_wait: Histogram = field(
        default_factory=lambda: Histogram("serve.latency.queue")
    )
    solve: Histogram = field(
        default_factory=lambda: Histogram("serve.latency.solve")
    )

    def record_request(self, op: str) -> None:
        self.requests += 1
        self.ops[op] = self.ops.get(op, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self.wall.observe(seconds)
        if len(self.latencies) < _LATENCY_RESERVOIR:
            self.latencies.append(seconds)

    def record_queue(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def record_batch(self, size: int, seconds: float, fallback: bool) -> None:
        self.batches += 1
        self.batch_cells += size
        self.batch_max = max(self.batch_max, size)
        self.batch_fallbacks += 1 if fallback else 0
        if len(self.batch_seconds) < _LATENCY_RESERVOIR:
            self.batch_seconds.append(seconds)
        # Each cell in the batch waited for the whole batch solve, so
        # the batch duration is every member's solve time.
        for _ in range(size):
            self.solve.observe(seconds)

    def snapshot(self, cache: ResultCache) -> dict:
        """The JSON payload of the ``stats`` op."""
        lat = self.latencies
        return {
            "requests": self.requests,
            "ops": dict(sorted(self.ops.items())),
            "errors": self.errors,
            "cells_solved": self.cells_solved,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "batch_cells": self.batch_cells,
            "batch_max": self.batch_max,
            "batch_fallbacks": self.batch_fallbacks,
            "cache": cache.stats(),
            "latency": {
                "count": len(lat),
                "mean": sum(lat) / len(lat) if lat else 0.0,
                "p50": percentile(lat, 50),
                "p99": percentile(lat, 99),
                "max": max(lat) if lat else 0.0,
            },
            "histograms": {
                h.name: h.summary()
                for h in (self.wall, self.queue_wait, self.solve)
            },
        }

    def obs_state(self, cache: ResultCache) -> dict:
        """Counters/timers/histograms in
        :meth:`repro.obs.Registry.merge_state` shape.

        Folded into ``OBS`` once, at drain — the async loop itself never
        increments registry counters while serving, because the inline
        (``jobs=1``) solve path captures the registry around each cell
        and would wipe concurrent increments.  ``ServerStats`` is the
        durable store; the registry gets the totals.  Live consumers
        (the ``stats`` op, the exporter, the snapshot stream) fold the
        same state into a *fresh* registry via
        :meth:`SolveServer.metrics_registry` instead of touching
        ``OBS`` mid-run.
        """
        counters = {
            "serve.requests": self.requests,
            "serve.errors": self.errors,
            "serve.cells.solved": self.cells_solved,
            "serve.coalesced": self.coalesced,
            "serve.batches": self.batches,
            "serve.batch.size": self.batch_cells,
            "serve.batch.max": self.batch_max,
            "serve.batch.fallbacks": self.batch_fallbacks,
            "serve.cache.hits": cache.hits,
            "serve.cache.misses": cache.misses,
            "serve.cache.evictions": cache.evictions,
        }
        for op, count in self.ops.items():
            counters[f"serve.requests.{op}"] = count
        timers = {}
        if self.latencies:
            timers["serve.request"] = {
                "total": sum(self.latencies),
                "count": len(self.latencies),
                "max": max(self.latencies),
            }
        if self.batch_seconds:
            timers["serve.batch.solve"] = {
                "total": sum(self.batch_seconds),
                "count": len(self.batch_seconds),
                "max": max(self.batch_seconds),
            }
        state = {"counters": counters, "timers": timers}
        histograms = {
            h.name: h.state()
            for h in (self.wall, self.queue_wait, self.solve)
            if h.count
        }
        if histograms:
            state["histograms"] = histograms
        return state


# -- the daemon -------------------------------------------------------


class SolveServer:
    """The asyncio daemon.  Use :func:`run_server` (blocking) or
    :class:`ServerThread` (tests, load generation) rather than driving
    this class directly; for manual control call :meth:`start`, then
    :meth:`serve_until_shutdown` inside a running event loop."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.cache = ResultCache(self.config.cache_size)
        self.stats = ServerStats()
        self.address: tuple[str, int] | str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._batcher_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self._merged_solver_counters: dict[str, float] = {}
        self._pool = None
        self._writers: set = set()
        self._next_trace = 0   # last issued request trace ID
        self._batch_seq = 0    # last issued batch sequence number

    # -- lifecycle ----------------------------------------------------

    def _start_pool(self) -> None:
        # A persistent pool, created once: the per-batch Pool that
        # parallel_map would make uses plain fork(), which deadlocks
        # intermittently out of a threaded process (the child snapshots
        # locks mid-held).  The forkserver context forks from a
        # single-threaded helper instead, and reusing one pool also
        # drops the per-batch setup cost.  Warm-up maps one trivial
        # task per worker so the children pay their import cost before
        # the first real request.
        import multiprocessing

        try:
            context = multiprocessing.get_context("forkserver")
        except ValueError:  # pragma: no cover - platform without forkserver
            context = multiprocessing.get_context("spawn")
        self._pool = context.Pool(processes=self.config.jobs)
        self._pool.map(_warm_worker, range(self.config.jobs), chunksize=1)

    async def start(self) -> None:
        if self.config.jobs > 1:
            await asyncio.get_running_loop().run_in_executor(
                None, self._start_pool
            )
        self._queue = asyncio.Queue()
        self._batcher_task = asyncio.create_task(self._batcher())
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle,
                path=self.config.socket_path,
                limit=self.config.max_line_bytes,
            )
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_line_bytes,
            )
            sock = self._server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent, threadsafe via loop)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until the ``shutdown`` op (or a signal) fires, then
        drain: stop accepting, finish queued batches, answer in-flight
        requests, stop the batcher."""
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        await self._queue.put(_STOP)
        await self._batcher_task
        # Handlers awaiting futures resolve on the next loop ticks;
        # give them a moment to write their final responses.
        for _ in range(50):
            if not self._inflight:
                break
            await asyncio.sleep(0.01)
        # Close lingering connections (clients idling in their read
        # loop) so every handler exits through its normal EOF path
        # before the event loop tears down, instead of being cancelled
        # mid-readline at asyncio.run() cleanup.
        for writer in list(self._writers):
            writer.close()
        for _ in range(50):
            if not self._writers:
                break
            await asyncio.sleep(0.01)
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def emit_obs(self) -> None:
        """Fold the serving metrics into the shared ``OBS`` registry.

        Called once after the loop exits (the CLI drain path): the
        ``serve.*`` counters/timers plus the solver counters merged
        across every cell this daemon solved — all deterministic per
        request sequence, so ``--stats-out`` records are comparable
        run-to-run.
        """
        OBS.merge_state(self.metrics_state())

    def metrics_state(self) -> dict:
        """A live fold of everything this daemon has measured so far:
        the ``serve.*`` counters/timers/histograms plus the solver
        counters merged across every solved cell — the exact state
        :meth:`emit_obs` folds into ``OBS`` at drain, built on demand
        mid-run.  Plain attribute reads under the GIL, so safe to call
        from the exporter thread or the ``stats`` op while serving.
        """
        state = self.stats.obs_state(self.cache)
        if self._merged_solver_counters:
            counters = state["counters"]
            for name, value in dict(self._merged_solver_counters).items():
                counters[name] = counters.get(name, 0) + value
        return state

    def metrics_registry(self) -> Registry:
        """A fresh :class:`~repro.obs.core.Registry` holding
        :meth:`metrics_state` — what the Prometheus exposition and the
        snapshot stream render.  A new registry per call: the live
        stats keep mutating, and handing out merge copies keeps the
        shared ``OBS`` untouched until drain."""
        registry = Registry()
        registry.merge_state(self.metrics_state())
        return registry

    # -- connection handling ------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while not reader.at_eof():
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or dropped peer
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                response = await self._dispatch(stripped)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
        except ConnectionError:  # pragma: no cover - peer vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._writers.discard(writer)

    async def _dispatch(self, line: bytes) -> dict:
        try:
            obj = json.loads(line)
        except ValueError as exc:
            self.stats.errors += 1
            return self._error(None, "ProtocolError", f"invalid JSON: {exc}")
        request_id = obj.get("id") if isinstance(obj, Mapping) else None
        if not isinstance(request_id, str):
            request_id = None
        try:
            request = normalize_request(obj)
        except ValueError as exc:
            self.stats.errors += 1
            return self._error(request_id, "ProtocolError", str(exc))
        self.stats.record_request(request["op"])
        if request["op"] == "ping":
            return self._ok(request_id, op="ping")
        if request["op"] == "stats":
            # A live fold (satellite of PR 6's drain-only merge): the
            # histogram percentiles and counters come from the same
            # state the drain-time RunRecord will freeze, so mid-run
            # stats are accurate while requests are still in flight.
            payload = self.stats.snapshot(self.cache)
            payload["inflight"] = len(self._inflight)
            payload["queued"] = self._queue.qsize() if self._queue else 0
            return self._ok(request_id, op="stats", stats=payload)
        if request["op"] == "shutdown":
            self.request_shutdown()
            return self._ok(request_id, op="shutdown", draining=True)
        return await self._solve(request)

    async def _solve(self, request: dict) -> dict:
        t0 = perf_counter()
        request_id = request["id"]
        # One trace ID per solve request, issued in arrival order on
        # the loop thread: the correlation key tying this request's
        # response, its serve.request note and the serve.batch note of
        # whichever batch solved it.
        self._next_trace += 1
        trace = self._next_trace
        fingerprint = request_fingerprint(request)
        use_cache = request["cache"] and self.config.cache_size > 0
        if use_cache:
            hit = self.cache.get(fingerprint)
            if hit is not None:
                elapsed = perf_counter() - t0
                self.stats.record_latency(elapsed)
                self._note(request_id, fingerprint, trace=trace, cached=True,
                           batch=0, elapsed=elapsed)
                return self._ok(
                    request_id,
                    result=hit,
                    fingerprint=fingerprint,
                    cached=True,
                    batch=0,
                    elapsed=elapsed,
                    trace=trace,
                )
        coalesced = False
        future = self._inflight.get(fingerprint) if use_cache else None
        if future is None:
            future = asyncio.get_running_loop().create_future()
            if use_cache:
                self._inflight[fingerprint] = future
            await self._queue.put((request, fingerprint if use_cache else None,
                                   future, trace, t0))
        else:
            self.stats.coalesced += 1
            coalesced = True
        outcome, batch_size, batch_seq = await future
        elapsed = perf_counter() - t0
        self.stats.record_latency(elapsed)
        if "ok" in outcome:
            self._note(request_id, fingerprint, trace=trace, cached=False,
                       batch=batch_size, elapsed=elapsed, batch_seq=batch_seq,
                       coalesced=coalesced)
            response = self._ok(
                request_id,
                result=outcome["ok"],
                fingerprint=fingerprint,
                cached=False,
                batch=batch_size,
                elapsed=elapsed,
                trace=trace,
            )
            if coalesced:
                response["coalesced"] = True
            return response
        self.stats.errors += 1
        return {
            "schema": RESPONSE_SCHEMA_ID,
            "id": request_id,
            "status": "error",
            "error": dict(outcome["error"]),
            "trace": trace,
        }

    # -- batching -----------------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            deadline = loop.time() + self.config.batch_window
            while len(batch) < self.config.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            await self._run_batch(loop, batch)

    async def _run_batch(self, loop, batch) -> None:
        requests = [item[0] for item in batch]
        self._batch_seq += 1
        batch_seq = self._batch_seq
        t0 = perf_counter()
        # Queue time: enqueue -> batch start, per leader request (a
        # coalesced follower never enqueued, so it has no queue wait).
        for _, _, _, _, t_enqueue in batch:
            self.stats.record_queue(max(0.0, t0 - t_enqueue))
        try:
            outcomes = await loop.run_in_executor(
                None, solve_batch, requests, self.config.jobs, self._pool
            )
        except Exception as exc:  # pragma: no cover - defensive
            outcomes = [
                {"error": {"type": type(exc).__name__, "message": str(exc),
                           "item": repr(req), "index": i}}
                for i, req in enumerate(requests)
            ]
        seconds = perf_counter() - t0
        fallback = any(outcome.get("fallback") for outcome in outcomes)
        self.stats.record_batch(len(batch), seconds, fallback)
        self.stats.cells_solved += len(batch)
        for (request, fingerprint, future, _, _), outcome in zip(batch, outcomes):
            if fingerprint is not None:
                self._inflight.pop(fingerprint, None)
                if "ok" in outcome:
                    self.cache.put(fingerprint, outcome["ok"])
            if "ok" in outcome:
                self._merge_solver_counters(outcome["ok"].get("counters", {}))
            if not future.done():
                future.set_result((outcome, len(batch), batch_seq))
        # The batch-side half of the trace correlation: one note
        # listing every trace this batch solved.
        OBS.note(
            "serve.batch",
            {
                "seq": batch_seq,
                "traces": [item[3] for item in batch],
                "cells": len(batch),
                "seconds": seconds,
                "fallback": fallback,
            },
        )

    def _merge_solver_counters(self, counters: Mapping) -> None:
        merged = self._merged_solver_counters
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value

    # -- response shaping ---------------------------------------------

    def _ok(self, request_id: str | None, **fields) -> dict:
        response = {
            "schema": RESPONSE_SCHEMA_ID,
            "id": request_id,
            "status": "ok",
        }
        response.update(fields)
        return response

    def _error(self, request_id: str | None, error_type: str,
               message: str) -> dict:
        return {
            "schema": RESPONSE_SCHEMA_ID,
            "id": request_id,
            "status": "error",
            "error": {"type": error_type, "message": message},
        }

    def _note(self, request_id: str | None, fingerprint: str, *,
              trace: int, cached: bool, batch: int, elapsed: float,
              batch_seq: int | None = None, coalesced: bool = False) -> None:
        # Per-request tracing for --events-out: a point event per
        # completed solve.  Notes never touch counters, so they are
        # safe to emit from the loop while a batch solves inline.
        # ``trace``/``batch_seq`` join this note to the matching
        # ``serve.batch`` note (which lists the traces it solved).
        data = {
            "id": request_id,
            "trace": trace,
            "fingerprint": fingerprint,
            "cached": cached,
            "batch": batch,
            "elapsed": elapsed,
        }
        if batch_seq is not None:
            data["batch_seq"] = batch_seq
        if coalesced:
            data["coalesced"] = True
        OBS.note("serve.request", data)


# -- entry points -----------------------------------------------------


async def _serve_main(server: SolveServer, ready=None) -> None:
    await server.start()
    if ready is not None:
        ready.set()
    await server.serve_until_shutdown()


def run_server(
    config: ServeConfig | None = None,
    *,
    on_ready=None,
    install_signal_handlers: bool = True,
) -> SolveServer:
    """Blocking entry point: start a daemon, serve until drained.

    ``on_ready(server)`` fires once the socket is bound (the CLI prints
    the address there).  SIGINT/SIGTERM trigger the same graceful drain
    as the ``shutdown`` op when handlers are installed (main thread
    only).  Returns the server so callers can read final stats and
    call :meth:`SolveServer.emit_obs`.
    """
    server = SolveServer(config)

    async def main() -> None:
        await server.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, server.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    break  # not the main thread / unsupported platform
        if on_ready is not None:
            on_ready(server)
        await server.serve_until_shutdown()

    asyncio.run(main())
    return server


class ServerThread:
    """A daemon on a background thread — tests and load generation.

    ``start()`` returns once the socket is bound; ``stop()`` requests
    the graceful drain and joins the thread.  The live server object is
    exposed as :attr:`server` (stats/cache inspection is safe — plain
    attribute reads under the GIL).
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.server = SolveServer(self.config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(
                _serve_main(self.server, _ThreadReady(self._ready))
            )
        finally:
            self._loop.close()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread did not become ready")
        return self

    @property
    def address(self):
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _ThreadReady:
    """Adapt a ``threading.Event`` to the asyncio ``ready.set()`` call."""

    __slots__ = ("_event",)

    def __init__(self, event: threading.Event):
        self._event = event

    def set(self) -> None:
        self._event.set()
