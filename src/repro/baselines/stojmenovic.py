"""Stojmenovic–Seddigh–Zunic clustering baseline [9] (simplified).

The [9] family builds the backbone from *cluster heads* plus *gateway*
nodes.  We implement the standard rendition: a node is a cluster head
when it has the highest key (degree, then id) in its closed
neighborhood — this yields an independent dominating set — and the
heads are then interconnected with shortest-path gateways.  Section I
notes this family has a *linear* worst-case ratio; the experiments
exhibit the gap against the constant-ratio two-phased algorithms on
clustered deployments.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..cds.base import CDSResult
from ..cds.steiner import steiner_connectors

N = TypeVar("N", bound=Hashable)

__all__ = ["cluster_heads", "stojmenovic_cds"]


def cluster_heads(graph: Graph[N]) -> list[N]:
    """Nodes with the highest (degree, id) key in their closed neighborhood.

    The resulting set is independent (two adjacent nodes cannot both be
    local maxima) and dominating (every node's neighborhood has a local
    maximum when keys are a total order... for the *closed* neighborhood
    relation used here this holds for the iterated election below).

    The one-shot local-maxima rule alone can leave nodes uncovered, so
    heads are elected iteratively: repeatedly take the highest-key
    uncovered node as a head and cover its closed neighborhood —
    exactly the "highest connectivity first" clustering of [9].
    """
    def key(v: N) -> tuple:
        return (graph.degree(v), _rank(v))

    uncovered = set(graph.nodes())
    heads: list[N] = []
    while uncovered:
        head = max(uncovered, key=key)
        heads.append(head)
        uncovered.discard(head)
        for u in graph.neighbors(head):
            uncovered.discard(u)
    return heads


def stojmenovic_cds(graph: Graph[N]) -> CDSResult:
    """Cluster heads + shortest-path gateways.

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm="stojmenovic", nodes=frozenset([only]))
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    heads = cluster_heads(graph)
    gateways = steiner_connectors(graph, heads)
    return CDSResult(
        algorithm="stojmenovic",
        nodes=frozenset(heads) | frozenset(gateways),
        dominators=tuple(heads),
        connectors=tuple(gateways),
    )


def _rank(node) -> tuple:
    return (node,) if not isinstance(node, tuple) else node
