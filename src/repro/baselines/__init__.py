"""Baseline CDS algorithms from the paper's related work.

Everything Section I compares the two-phased framework against:
Guha–Khuller centralized greedy, Das–Bharghavan set-cover [2],
Wu–Li marking + pruning, Stojmenovic clustering [9], and the
message-optimal Alzoubi construction [1].
"""

from .guha_khuller import guha_khuller_cds
from .das_bharghavan import chvatal_dominating_set, das_bharghavan_cds
from .wu_li import wu_li_cds, wu_li_marked
from .stojmenovic import cluster_heads, stojmenovic_cds
from .alzoubi import alzoubi_cds

__all__ = [
    "guha_khuller_cds",
    "chvatal_dominating_set",
    "das_bharghavan_cds",
    "wu_li_cds",
    "wu_li_marked",
    "cluster_heads",
    "stojmenovic_cds",
    "alzoubi_cds",
]

#: All baselines keyed by label, for the comparison experiments.
ALL_BASELINES = {
    "guha-khuller": guha_khuller_cds,
    "das-bharghavan": das_bharghavan_cds,
    "wu-li": wu_li_cds,
    "stojmenovic": stojmenovic_cds,
    "alzoubi": alzoubi_cds,
}
