"""Alzoubi–Wan–Frieder message-optimal CDS [1] (centralized rendition).

The [1] algorithm trades CDS size for linear time and messages: it
elects an MIS and then connects every pair of MIS nodes at graph
distance at most three with the internal nodes of one shortest path.
Because a 2-hop separated MIS has every node within three hops of
another MIS node, the union is connected; the ratio is a large constant
(the paper quotes "less than 192").

This centralized rendition preserves exactly that structure — MIS plus
one path per close MIS pair — so its *size behavior* (noticeably larger
than WAF, much larger than the Section IV greedy) is faithful; the
message-complexity side of [1] is reproduced separately by the
distributed simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..mis.first_fit import first_fit_mis
from ..cds.base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["alzoubi_cds"]


def alzoubi_cds(graph: Graph[N], root: N | None = None) -> CDSResult:
    """MIS plus connectors to every MIS node within three hops.

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="alzoubi", nodes=frozenset([only]), dominators=(only,), connectors=()
        )
    if not is_connected(graph):
        raise ValueError("graph must be connected")

    mis = first_fit_mis(graph, root)
    mis_set = mis.as_set()
    connectors: list[N] = []
    connector_set: set[N] = set()
    for v in mis.nodes:
        for target, path in _mis_within_three_hops(graph, v, mis_set).items():
            # One path per unordered pair: keep the pair where v < target.
            if not _before(v, target):
                continue
            for w in path:
                if w not in mis_set and w not in connector_set:
                    connector_set.add(w)
                    connectors.append(w)
    return CDSResult(
        algorithm="alzoubi",
        nodes=frozenset(mis.nodes) | frozenset(connectors),
        dominators=tuple(mis.nodes),
        connectors=tuple(connectors),
    )


def _mis_within_three_hops(
    graph: Graph[N], source: N, mis_set: set[N]
) -> dict[N, list[N]]:
    """MIS nodes at distance 1..3 from ``source`` with the internal
    nodes of one shortest path to each."""
    parent: dict[N, N | None] = {source: None}
    depth = {source: 0}
    queue: deque[N] = deque([source])
    found: dict[N, list[N]] = {}
    while queue:
        u = queue.popleft()
        if depth[u] >= 3:
            continue
        for w in graph.neighbors(u):
            if w in depth:
                continue
            depth[w] = depth[u] + 1
            parent[w] = u
            if w in mis_set:
                # Internal nodes only.
                path: list[N] = []
                walk = parent[w]
                while walk is not None and walk != source:
                    path.append(walk)
                    walk = parent[walk]
                found[w] = path
                # Do not traverse through MIS nodes; paths are between
                # *adjacent-in-backbone* pairs.
                continue
            queue.append(w)
    return found


def _before(a, b) -> bool:
    try:
        return a < b
    except TypeError:  # pragma: no cover - defensive
        return repr(a) < repr(b)
