"""Das–Bharghavan set-cover CDS [2].

The earliest algorithm in the paper's two-phased taxonomy: phase 1
selects the dominators with Chvátal's greedy Set Cover heuristic [5]
(each node's set is its closed neighborhood; repeatedly take the node
covering the most uncovered nodes), phase 2 interconnects the resulting
fragments.  Section I notes its approximation ratio is logarithmic —
the experiments show it picks *fewer dominators* than an MIS but pays
in connectors, and carries no constant-factor guarantee.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..cds.base import CDSResult
from ..cds.steiner import steiner_connectors

N = TypeVar("N", bound=Hashable)

__all__ = ["chvatal_dominating_set", "das_bharghavan_cds"]


def chvatal_dominating_set(graph: Graph[N]) -> list[N]:
    """Greedy set-cover dominating set.

    Each step takes the node whose closed neighborhood covers the most
    still-uncovered nodes (ties to the smaller node).  Guarantees the
    ``H(Δ+1)`` set-cover factor against the minimum *dominating* set.
    """
    uncovered: set[N] = set(graph.nodes())
    chosen: list[N] = []
    while uncovered:
        def coverage(v: N) -> int:
            c = 1 if v in uncovered else 0
            return c + sum(1 for u in graph.neighbors(v) if u in uncovered)

        best = max(coverage(v) for v in graph)
        pick = min((v for v in graph if coverage(v) == best))
        chosen.append(pick)
        uncovered.discard(pick)
        for u in graph.neighbors(pick):
            uncovered.discard(u)
    return chosen


def das_bharghavan_cds(graph: Graph[N]) -> CDSResult:
    """Chvátal-greedy dominators + shortest-path connectors.

    Phase 2 uses shortest inter-fragment paths (the original paper
    grows a Steiner-ish tree over the fragments; path-merging is the
    standard centralized rendition and preserves the logarithmic
    overall ratio).

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm="das-bharghavan", nodes=frozenset([only]))
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    dominators = chvatal_dominating_set(graph)
    connectors = steiner_connectors(graph, dominators)
    return CDSResult(
        algorithm="das-bharghavan",
        nodes=frozenset(dominators) | frozenset(connectors),
        dominators=tuple(dominators),
        connectors=tuple(connectors),
    )
