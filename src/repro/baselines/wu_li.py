"""Wu–Li marking process with pruning Rules 1 and 2.

A well-known non-two-phased baseline: mark every node that has two
neighbors not adjacent to each other (such nodes lie on some shortest
path), then prune:

* Rule 1: unmark ``v`` if some marked ``u`` with higher id has
  ``N[v] ⊆ N[u]``;
* Rule 2: unmark ``v`` if two marked, mutually-adjacent-to-``v``
  neighbors ``u, w`` (both with higher id) satisfy
  ``N(v) ⊆ N(u) ∪ N(w)``.

The marked set after pruning is a CDS of any connected non-complete
graph; for complete graphs nothing is marked and the single smallest
node is returned (any single node dominates).  No constant ratio is
known — the experiments show it trailing both two-phased algorithms
on dense UDGs, the motivating comparison for MIS-based phase 1.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..cds.base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["wu_li_cds", "wu_li_marked"]


def wu_li_marked(graph: Graph[N]) -> set[N]:
    """The raw marking: nodes with two non-adjacent neighbors."""
    marked: set[N] = set()
    for v in graph:
        nbrs = graph.neighbors(v)
        found = False
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if not graph.has_edge(nbrs[i], nbrs[j]):
                    found = True
                    break
            if found:
                break
        if found:
            marked.add(v)
    return marked


def _rank(node) -> tuple:
    """Total order on nodes standing in for the protocol's ids."""
    return (node,) if not isinstance(node, tuple) else node


def wu_li_cds(graph: Graph[N]) -> CDSResult:
    """Marking + Rule 1 + Rule 2.

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm="wu-li", nodes=frozenset([only]))

    marked = wu_li_marked(graph)
    if not marked:
        # Complete graph: every single node is a CDS.
        return CDSResult(algorithm="wu-li", nodes=frozenset([min(graph.nodes())]))

    # Both rules are applied *simultaneously* against the frozen initial
    # marking (the variant whose safety proof uses the id order alone);
    # unmarking sequentially against the shrinking set is not safe.
    initially_marked = frozenset(marked)

    # Rule 1: coverage by one higher-id marked neighbor.
    for v in sorted(initially_marked):
        closed_v = graph.closed_neighborhood(v)
        for u in graph.neighbors(v):
            if u in initially_marked and u != v and _rank(u) > _rank(v):
                if closed_v <= graph.closed_neighborhood(u):
                    marked.discard(v)
                    break

    # Rule 2: coverage by two connected higher-id marked neighbors.
    for v in sorted(marked):
        open_v = set(graph.neighbors(v))
        candidates = [
            u
            for u in graph.neighbors(v)
            if u in initially_marked and _rank(u) > _rank(v)
        ]
        done = False
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                u, w = candidates[i], candidates[j]
                if not graph.has_edge(u, w):
                    continue
                union = set(graph.neighbors(u)) | set(graph.neighbors(w))
                if open_v <= union:
                    marked.discard(v)
                    done = True
                    break
            if done:
                break

    return CDSResult(algorithm="wu-li", nodes=frozenset(marked))
