"""Guha–Khuller centralized greedy CDS.

The classic ``2(1 + H(Δ))``-approximation that the two-phased
distributed algorithms are implicitly measured against: grow a single
connected black tree, always extending by the (gray) node that newly
dominates the most still-white nodes.

Coloring convention: *white* = undominated, *gray* = dominated but not
selected, *black* = selected (in the CDS).  The growth step may also
consider a gray-white *pair* (the original paper's refinement); both
variants are provided since the pair rule noticeably helps on sparse
UDGs.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from ..cds.base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["guha_khuller_cds"]


def guha_khuller_cds(graph: Graph[N], use_pairs: bool = True) -> CDSResult:
    """Run the Guha–Khuller greedy tree growth.

    Args:
        graph: connected, non-empty.
        use_pairs: also consider gray-white pairs per step (the
            two-step lookahead of the original Algorithm I).

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm="guha-khuller", nodes=frozenset([only]))
    if not is_connected(graph):
        raise ValueError("graph must be connected")

    white: set[N] = set(graph.nodes())
    gray: set[N] = set()
    black: list[N] = []

    def yield_of(v: N) -> int:
        """White nodes newly dominated if v turns black."""
        count = 1 if v in white else 0
        count += sum(1 for u in graph.neighbors(v) if u in white)
        return count

    def blacken(v: N) -> None:
        white.discard(v)
        gray.discard(v)
        black.append(v)
        for u in graph.neighbors(v):
            if u in white:
                white.discard(u)
                gray.add(u)

    # Seed: the globally best node.
    seed = max(graph.nodes(), key=lambda v: (yield_of(v),))
    blacken(seed)

    while white:
        best_v: N | None = None
        best_gain = -1
        best_pair: tuple[N, N] | None = None
        for v in list(gray):
            g = yield_of(v)
            if g > best_gain:
                best_gain, best_v, best_pair = g, v, None
            if use_pairs:
                for u in graph.neighbors(v):
                    if u in white:
                        g2 = g + _pair_extra(graph, u, white, v)
                        if g2 > best_gain:
                            best_gain, best_v, best_pair = g2, v, (v, u)
        if best_v is None:
            raise AssertionError("no gray frontier but white nodes remain")
        blacken(best_v)
        if best_pair is not None:
            blacken(best_pair[1])

    return CDSResult(algorithm="guha-khuller", nodes=frozenset(black))


def _pair_extra(graph: Graph[N], u: N, white: set[N], v: N) -> int:
    """Additional white nodes dominated by also blackening ``u``.

    ``u`` itself is counted in ``v``'s yield (it is a white neighbor of
    ``v``), so only ``u``'s white neighbors beyond ``v``'s reach count.
    """
    v_reach = set(graph.neighbors(v))
    v_reach.add(v)
    return sum(
        1 for w in graph.neighbors(u) if w in white and w not in v_reach and w != u
    )
