"""Deterministic fault injection at named ``trace()`` sites.

Chaos testing only earns its keep when a failing run can be replayed
exactly, so every injection decision here is a pure function of
``(plan seed, cell scope, span name, occurrence index)`` — hashed with
SHA-256, never with Python's per-process-randomised ``hash()`` — and
the injector plugs into the existing :class:`repro.obs.core.SpanHook`
layer.  That means every instrumented site in the library — the UDG
builders (``udg.grid.build``), the phase-1 MIS (``mis.first_fit``),
both WAF phases (``waf.phase1``/``waf.phase2``), the Section IV greedy
(``greedy.phase1``/``greedy.phase2``) — is already a fault point, with
zero changes to the instrumented code.

Three actions model the failure universe of a wireless sweep worker:

* ``"raise"`` — the site raises :class:`InjectedFault` (a software
  fault: bad input, assertion, resource error);
* ``"delay"`` — the site sleeps, driving per-cell timeouts (a stuck or
  slow node);
* ``"kill"`` — the worker process dies on the spot via ``os._exit``
  (a crash / ``kill -9`` — no exception handling, no cleanup, exactly
  like the real thing).

Typical use (see ``docs/robustness.md``)::

    plan = FaultPlan(seed=7, specs=(
        FaultSpec(site="greedy.phase2", action="raise", rate=0.3),
    ))
    report = run_cells(worker, cells, jobs=4, faults=plan, ...)

The CLI sweep mode accepts the same specs as strings
(``--inject-fault 'site=greedy.phase2;action=kill;scope=*seed=1*'``)
for chaos drills against a live checkpoint file.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..obs.core import SpanHook

__all__ = [
    "FAULT_ACTIONS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "det_unit",
]

#: Supported injection actions.
FAULT_ACTIONS = ("raise", "delay", "kill")

#: Exit code used by the ``"kill"`` action (the conventional code of a
#: SIGKILL-terminated process, so crash handling can't tell the drill
#: from the real thing).
KILL_EXIT_CODE = 137


class InjectedFault(RuntimeError):
    """The exception raised by a ``"raise"``-action fault."""


def det_unit(*parts: object) -> float:
    """A deterministic uniform value in ``[0, 1)`` from ``parts``.

    SHA-256 over the ``repr`` of the parts — stable across processes,
    Python versions and ``PYTHONHASHSEED``, unlike built-in ``hash()``.
    Shared by the injector (fire/skip decisions) and the retry backoff
    jitter (:meth:`repro.reliability.runner.RetryPolicy.delay`).
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, what, and how often.

    Attributes:
        site: ``fnmatch`` pattern over span names (``"waf.*"``,
            ``"greedy.phase2"``).
        action: one of :data:`FAULT_ACTIONS`.
        rate: probability of firing per matching occurrence (decided
            deterministically per ``(seed, scope, site, occurrence)``).
        at: when given, fire only on these 0-based occurrence indices
            of the site within one cell (``rate`` still applies).
        scope: ``fnmatch`` pattern over the cell scope key — restricts
            the fault to particular cells (``"*seed=1*"``).
        delay: seconds slept by the ``"delay"`` action.
        max_fires: stop firing after this many hits per cell (``None``
            = unlimited).
    """

    site: str
    action: str
    rate: float = 1.0
    at: tuple[int, ...] | None = None
    scope: str = "*"
    delay: float = 0.05
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"action must be one of {FAULT_ACTIONS}, got {self.action!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules.

    Picklable (it crosses the process boundary into sweep workers);
    :meth:`injector` builds the per-cell hook with the cell's scope key
    mixed into every decision, so two cells under the same plan fail
    independently yet each cell fails identically on every rerun.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    @property
    def has_kill(self) -> bool:
        """Whether any rule can kill the worker process (such plans
        force process isolation in the runner)."""
        return any(spec.action == "kill" for spec in self.specs)

    def injector(self, scope: str = "") -> "FaultInjector":
        """A fresh injector for one cell (occurrence counts start at 0)."""
        return FaultInjector(self, scope)


class FaultInjector(SpanHook):
    """A span hook firing the plan's faults at matching trace sites.

    Attach to a registry (``OBS.add_hook(injector)``) with the registry
    *enabled*; hooks never run while it is disabled.  When several
    hooks are attached the injector should be attached **first** so a
    raising fault fires before later hooks (e.g. an
    :class:`~repro.obs.events.EventLog`) have pushed their span state.

    :attr:`fired` records every hit as ``(site, occurrence, action)``,
    in order — the deterministic trace a chaos test asserts on.
    """

    __slots__ = ("plan", "scope", "fired", "_occurrences", "_spec_fires")

    def __init__(self, plan: FaultPlan, scope: str = ""):
        self.plan = plan
        self.scope = scope
        self.fired: list[tuple[str, int, str]] = []
        self._occurrences: dict[str, int] = {}
        self._spec_fires: dict[int, int] = {}

    def begin(self, name: str) -> None:
        occurrence = self._occurrences.get(name, 0)
        self._occurrences[name] = occurrence + 1
        for spec_index, spec in enumerate(self.plan.specs):
            if not fnmatchcase(name, spec.site):
                continue
            if not fnmatchcase(self.scope, spec.scope):
                continue
            if spec.at is not None and occurrence not in spec.at:
                continue
            if (
                spec.max_fires is not None
                and self._spec_fires.get(spec_index, 0) >= spec.max_fires
            ):
                continue
            if spec.rate < 1.0:
                u = det_unit(
                    self.plan.seed, self.scope, name, occurrence, spec_index
                )
                if u >= spec.rate:
                    continue
            self._spec_fires[spec_index] = self._spec_fires.get(spec_index, 0) + 1
            self._fire(spec, name, occurrence)
        return None

    def _fire(self, spec: FaultSpec, name: str, occurrence: int) -> None:
        self.fired.append((name, occurrence, spec.action))
        if spec.action == "delay":
            time.sleep(spec.delay)
        elif spec.action == "raise":
            raise InjectedFault(
                f"injected fault at {name!r} "
                f"(occurrence {occurrence}, scope {self.scope!r})"
            )
        elif spec.action == "kill":
            # A hard death: no exception propagation, no atexit, no
            # flushing — indistinguishable from `kill -9` to the parent.
            os._exit(KILL_EXIT_CODE)


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form: ``key=value`` pairs joined with ``;``.

    Example::

        site=greedy.phase2;action=kill;scope=*seed=1*;rate=1.0;at=0

    Keys mirror the :class:`FaultSpec` fields; ``at`` accepts a
    comma-separated index list.  Raises ``ValueError`` on unknown keys
    or malformed values.
    """
    fields: dict[str, object] = {}
    for pair in text.split(";"):
        pair = pair.strip()
        if not pair:
            continue
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"malformed fault spec entry {pair!r} (want key=value)")
        key = key.strip()
        value = value.strip()
        if key in ("site", "action", "scope"):
            fields[key] = value
        elif key in ("rate", "delay"):
            fields[key] = float(value)
        elif key == "max_fires":
            fields[key] = int(value)
        elif key == "at":
            fields[key] = tuple(int(v) for v in value.split(",") if v)
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    if "site" not in fields or "action" not in fields:
        raise ValueError("fault spec needs at least site=... and action=...")
    return FaultSpec(**fields)  # type: ignore[arg-type]
