"""The sweep checkpoint ledger: ``repro.reliability/checkpoint/v1``.

A sweep's progress is journalled as append-only JSONL — one header
line describing the grid, then one line per completed cell (or
terminal failure), each flushed and fsynced as it happens.  Kill the
process at any instant and the ledger still holds every finished cell;
a resumed sweep re-runs only the missing ones and merges to results
bit-identical to an uninterrupted run (the cells are deterministic per
seed, and the ledger stores their full result payloads).

Line shapes (schema-validated like the RunRecord, no third-party
jsonschema dependency):

* **header** — opens the file; pins the grid so a resume against the
  wrong sweep is rejected::

      {"schema": "repro.reliability/checkpoint/v1", "type": "sweep",
       "label": "solve:greedy:auto", "fingerprint": "ab12...",
       "cells": 12, "meta": {...}}

* **cell** — one completed cell with its (JSON-encoded) result::

      {"type": "cell", "key": "n=20;side=3.8;seed=1",
       "attempts": 1, "result": {...}}

* **failure** — a cell that exhausted its retries (re-run on resume)::

      {"type": "failure", "key": "...", "attempts": 3, "failure": {...}}

* **resume** — an informational marker appended when a session reopens
  the ledger::

      {"type": "resume", "completed": 7}

Crash-safety contract: a process killed mid-write leaves at most one
*partial trailing line*.  Readers drop it (reported via
:attr:`CheckpointLedger.truncated`); re-opening for append first
truncates the file back to the last complete line so the journal never
accumulates garbage.  A *duplicate* ``cell`` key, or an invalid line
anywhere before the tail, is corruption and raises ``ValueError``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .failures import CellFailure

__all__ = [
    "CHECKPOINT_SCHEMA_ID",
    "CheckpointLedger",
    "CheckpointWriter",
    "grid_fingerprint",
    "read_checkpoint",
    "validate_checkpoint_lines",
    "repair_trailing_line",
]

#: Version tag carried by every ledger header; bump on shape change.
CHECKPOINT_SCHEMA_ID = "repro.reliability/checkpoint/v1"

_LINE_TYPES = ("sweep", "cell", "failure", "resume")


def grid_fingerprint(keys: Sequence[str], label: str) -> str:
    """A stable digest of the sweep identity: its label and cell keys.

    Written into the header and re-derived on resume — a ledger whose
    fingerprint does not match the requested sweep is refused rather
    than silently merged into the wrong grid.
    """
    payload = json.dumps([label, list(keys)], separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def validate_checkpoint_lines(lines: Sequence[Mapping]) -> list[str]:
    """Schema-check parsed ledger lines; returns violations (empty = ok)."""
    errors: list[str] = []
    if not lines:
        return ["ledger is empty (expected a sweep header)"]
    header = lines[0]
    if header.get("type") != "sweep":
        errors.append("first line must be the 'sweep' header")
    elif header.get("schema") != CHECKPOINT_SCHEMA_ID:
        errors.append(
            f"unknown checkpoint schema {header.get('schema')!r} "
            f"(expected {CHECKPOINT_SCHEMA_ID!r})"
        )
    else:
        for key in ("label", "fingerprint", "cells"):
            if key not in header:
                errors.append(f"header: missing {key!r}")
    seen_keys: set[str] = set()
    for i, line in enumerate(lines[1:], start=1):
        kind = line.get("type")
        if kind not in _LINE_TYPES:
            errors.append(f"line {i}: unknown type {kind!r}")
            continue
        if kind == "sweep":
            errors.append(f"line {i}: duplicate 'sweep' header")
        elif kind == "cell":
            key = line.get("key")
            if not isinstance(key, str) or not key:
                errors.append(f"line {i} (cell): missing 'key'")
                continue
            if key in seen_keys:
                errors.append(f"line {i} (cell): duplicate key {key!r}")
            seen_keys.add(key)
            if "result" not in line:
                errors.append(f"line {i} (cell): missing 'result'")
            attempts = line.get("attempts")
            if not isinstance(attempts, int) or attempts < 1:
                errors.append(f"line {i} (cell): 'attempts' must be an int >= 1")
        elif kind == "failure":
            if not isinstance(line.get("key"), str):
                errors.append(f"line {i} (failure): missing 'key'")
            if not isinstance(line.get("failure"), Mapping):
                errors.append(f"line {i} (failure): 'failure' must be an object")
    return errors


@dataclass
class CheckpointLedger:
    """A parsed, validated ledger.

    ``cells`` maps cell key to its ``cell`` line (``result`` payload and
    ``attempts``); ``failures`` keeps every recorded terminal failure
    (historical — failed cells are re-run on resume); ``truncated``
    flags a dropped partial trailing line (a mid-write crash).
    """

    header: dict
    cells: dict[str, dict] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    resumes: int = 0
    truncated: bool = False

    @property
    def label(self) -> str:
        return self.header["label"]

    @property
    def fingerprint(self) -> str:
        return self.header["fingerprint"]

    def result(self, key: str) -> object:
        return self.cells[key]["result"]

    def attempts(self, key: str) -> int:
        return self.cells[key]["attempts"]

    def missing(self, keys: Iterable[str]) -> list[str]:
        """The resume set: grid keys with no completed cell, in order."""
        return [k for k in keys if k not in self.cells]

    def check_grid(self, keys: Sequence[str], label: str) -> None:
        """Refuse to resume a sweep the ledger does not describe."""
        expected = grid_fingerprint(keys, label)
        if self.fingerprint != expected:
            raise ValueError(
                f"checkpoint does not match this sweep: ledger is "
                f"{self.label!r} over {self.header.get('cells')} cell(s) "
                f"(fingerprint {self.fingerprint}), requested {label!r} "
                f"over {len(keys)} cell(s) (fingerprint {expected})"
            )


def _parse_lines(text: str) -> tuple[list[dict], bool]:
    """Split ledger text into parsed complete lines + truncation flag.

    Only the *final* chunk may be partial (no trailing newline or
    malformed JSON) — that is the signature of a crash mid-write and is
    dropped.  Malformed JSON anywhere earlier is corruption.
    """
    truncated = False
    raw = text.split("\n")
    if raw and raw[-1] == "":
        raw.pop()
    elif raw:
        truncated = True  # no trailing newline: last line incomplete
    lines: list[dict] = []
    for i, chunk in enumerate(raw):
        is_last = i == len(raw) - 1
        try:
            obj = json.loads(chunk)
            if not isinstance(obj, dict):
                raise ValueError("line is not a JSON object")
        except ValueError as exc:
            if is_last:
                # A complete-looking final line that fails to parse is
                # still the mid-write crash signature (the newline of
                # the *previous* line survived, the payload did not).
                truncated = True
                break
            raise ValueError(
                f"checkpoint corrupt: line {i} is not valid JSON ({exc})"
            ) from None
        if is_last and truncated:
            # Final chunk parsed but had no newline — the write may
            # have been cut inside a longer payload; treat as partial.
            break
        lines.append(obj)
    return lines, truncated


def read_checkpoint(path: str | Path) -> CheckpointLedger:
    """Load and validate a ledger, dropping a partial trailing line.

    Raises:
        ValueError: on schema violations, a duplicate cell key, or
            malformed JSON before the final line.
        OSError: when the file cannot be read.
    """
    lines, truncated = _parse_lines(Path(path).read_text())
    errors = validate_checkpoint_lines(lines)
    if errors:
        raise ValueError(
            f"invalid checkpoint {path}: " + "; ".join(errors)
        )
    ledger = CheckpointLedger(header=lines[0], truncated=truncated)
    for line in lines[1:]:
        if line["type"] == "cell":
            ledger.cells[line["key"]] = line
        elif line["type"] == "failure":
            ledger.failures.append(CellFailure.from_json_obj(line["failure"]))
        elif line["type"] == "resume":
            ledger.resumes += 1
    return ledger


def repair_trailing_line(path: str | Path) -> bool:
    """Truncate a ledger back to its last complete line, in place.

    Returns ``True`` when bytes were dropped.  Called before appending
    to a ledger a previous session may have died while writing.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        # Even with a final newline the last payload may be garbage
        # (crash between payload and fsync is not possible with our
        # write ordering, but a foreign writer could have corrupted
        # it); _parse_lines on read handles that case.
        cut = len(data)
        tail = data[:-1].rfind(b"\n")
        last = data[tail + 1 : -1] if tail >= 0 else data[:-1]
        if last:
            try:
                json.loads(last.decode("utf-8", errors="strict"))
            except ValueError:
                cut = tail + 1 if tail >= 0 else 0
        if cut == len(data):
            return False
    else:
        tail = data.rfind(b"\n")
        cut = tail + 1 if tail >= 0 else 0
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return True


class CheckpointWriter:
    """Append-only, fsync-per-line journal of sweep progress.

    ``resume=False`` starts a fresh ledger (truncating any existing
    file); ``resume=True`` repairs a partial trailing line and appends
    a ``resume`` marker.  Every record is written as one line then
    flushed **and fsynced** before :meth:`record_cell` returns — the
    durability contract the crash-recovery guarantee rests on.

    Use as a context manager or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        keys: Sequence[str],
        label: str,
        meta: Mapping | None = None,
        resume: bool = False,
        completed: int = 0,
    ):
        self.path = Path(path)
        self.fingerprint = grid_fingerprint(keys, label)
        if resume and self.path.exists():
            repair_trailing_line(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._write_line({"type": "resume", "completed": completed})
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(
                {
                    "schema": CHECKPOINT_SCHEMA_ID,
                    "type": "sweep",
                    "label": label,
                    "fingerprint": self.fingerprint,
                    "cells": len(keys),
                    "meta": dict(meta or {}),
                }
            )

    def _write_line(self, obj: Mapping) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_cell(self, key: str, result: object, attempts: int) -> None:
        """Journal one completed cell (``result`` must be JSON-ready)."""
        self._write_line(
            {"type": "cell", "key": key, "attempts": attempts, "result": result}
        )

    def record_failure(self, failure: CellFailure) -> None:
        """Journal a terminal failure (informational; re-run on resume)."""
        self._write_line(
            {
                "type": "failure",
                "key": failure.key,
                "attempts": failure.attempts,
                "failure": failure.to_json_obj(),
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
