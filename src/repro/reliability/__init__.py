"""``repro.reliability`` — fault-isolated, resumable sweep execution.

The experiment infrastructure's answer to the failure model of the
networks this reproduction studies: node and task failure are the
*normal case* (cf. the backbone-maintenance literature in PAPERS.md),
so a sweep must survive a crashing cell the way a CDS survives a
crashing node — locally, with bounded repair, and without recomputing
the part of the structure that still stands.

Four pieces, composable and individually testable:

* :mod:`~repro.reliability.failures` — structured
  :class:`CellFailure` records and the :class:`CellError` wrapper that
  gives raw worker exceptions a cell identity;
* :mod:`~repro.reliability.faults` — deterministic, seeded fault
  injection (:class:`FaultPlan` / :class:`FaultInjector`) at existing
  ``trace()`` sites, powering the chaos test tier;
* :mod:`~repro.reliability.checkpoint` — the fsynced JSONL sweep
  ledger (``repro.reliability/checkpoint/v1``) behind
  ``--checkpoint`` / ``--resume``;
* :mod:`~repro.reliability.runner` — :func:`run_cells`, the
  process-isolated retry/timeout/resume engine.

See ``docs/robustness.md`` for the failure model and how-to.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_ID,
    CheckpointLedger,
    CheckpointWriter,
    grid_fingerprint,
    read_checkpoint,
    repair_trailing_line,
    validate_checkpoint_lines,
)
from .failures import FAILURE_KINDS, CellError, CellFailure
from .faults import (
    FAULT_ACTIONS,
    KILL_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    det_unit,
    parse_fault_spec,
)
from .runner import CellOutcome, RetryPolicy, SweepReport, run_cells

__all__ = [
    "CHECKPOINT_SCHEMA_ID",
    "CheckpointLedger",
    "CheckpointWriter",
    "grid_fingerprint",
    "read_checkpoint",
    "repair_trailing_line",
    "validate_checkpoint_lines",
    "FAILURE_KINDS",
    "CellError",
    "CellFailure",
    "FAULT_ACTIONS",
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "det_unit",
    "parse_fault_spec",
    "CellOutcome",
    "RetryPolicy",
    "SweepReport",
    "run_cells",
]
