"""Structured failure records for sweep cells.

A sweep treats failure as data, not as control flow: when a cell
cannot produce a result, what the caller gets is a
:class:`CellFailure` — a picklable, JSON-round-trippable record of
*which* cell failed, *how* (exception / timeout / crash), after *how
many* attempts, and with what traceback.  The record crosses process
boundaries (a worker dies, the parent still knows exactly what was
lost) and lands in the checkpoint ledger so a resumed sweep can report
historical failures alongside fresh ones.

:class:`CellError` is the raising-path counterpart: the wrapper
:func:`repro.experiments.parallel.parallel_map` puts around a worker
exception so a crashed map names the failing item instead of
surfacing a bare traceback with no cell identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "FAILURE_KINDS",
    "CellFailure",
    "CellError",
]

#: How a cell can fail: a worker exception, a per-cell wall-clock
#: timeout, or a worker process that died without reporting (killed,
#: ``os._exit``, segfault).
FAILURE_KINDS = ("exception", "timeout", "crash")


@dataclass(frozen=True)
class CellFailure:
    """One cell's terminal failure, after all retries were spent.

    Attributes:
        key: the cell's stable identity string (see
            :func:`repro.reliability.runner.run_cells` ``key_fn``).
        kind: one of :data:`FAILURE_KINDS`.
        attempts: how many attempts were made (1 = no retry fired).
        error_type: the exception class name (``"InjectedFault"``,
            ``"ZeroDivisionError"``, ...); ``"TimeoutError"`` for
            timeouts, ``"WorkerCrash"`` for a dead worker.
        message: the exception message / a one-line description.
        traceback: the worker-side formatted traceback, or ``""`` when
            none could be captured (timeout, crash).
        exitcode: the worker process exit code for crashes (negative
            for a signal death, e.g. ``-9`` for SIGKILL), else ``None``.
    """

    key: str
    kind: str
    attempts: int
    error_type: str
    message: str
    traceback: str = ""
    exitcode: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )

    def describe(self) -> str:
        """A one-line human summary for failure reports."""
        extra = f", exit {self.exitcode}" if self.exitcode is not None else ""
        return (
            f"{self.key}: {self.kind} after {self.attempts} attempt(s) "
            f"({self.error_type}: {self.message}{extra})"
        )

    # -- serialisation (checkpoint ledger) ----------------------------

    def to_json_obj(self) -> dict:
        obj: dict[str, Any] = {
            "key": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }
        if self.exitcode is not None:
            obj["exitcode"] = self.exitcode
        return obj

    @classmethod
    def from_json_obj(cls, obj: Mapping) -> "CellFailure":
        return cls(
            key=obj["key"],
            kind=obj["kind"],
            attempts=int(obj["attempts"]),
            error_type=obj["error_type"],
            message=obj["message"],
            traceback=obj.get("traceback", ""),
            exitcode=obj.get("exitcode"),
        )


class CellError(RuntimeError):
    """A worker exception enriched with the failing cell's identity.

    Raised by :func:`repro.experiments.parallel.parallel_map` (and the
    serial fallbacks) in place of the bare worker exception, so a
    crashed sweep reports *which* item killed it.  The original
    exception is chained as ``__cause__`` in-process; across a
    process boundary (``multiprocessing`` pickles exceptions by
    ``args``) the original type name and worker-side traceback are
    preserved as attributes instead.
    """

    def __init__(
        self,
        item_repr: str,
        index: int,
        error_type: str,
        message: str,
        worker_traceback: str = "",
    ):
        super().__init__(
            f"worker failed on item {index} ({item_repr}): "
            f"{error_type}: {message}"
        )
        self.item_repr = item_repr
        self.index = index
        self.error_type = error_type
        self.error_message = message
        self.worker_traceback = worker_traceback

    @classmethod
    def wrap(cls, item: object, index: int, exc: BaseException) -> "CellError":
        """Build the enriched error for ``exc`` raised on ``item``."""
        import traceback as _tb

        return cls(
            item_repr=repr(item),
            index=index,
            error_type=type(exc).__name__,
            message=str(exc),
            worker_traceback="".join(
                _tb.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def __reduce__(self):
        # Explicit so the five-argument form survives multiprocessing's
        # pickle round-trip (default exception reduction replays only
        # ``args``, which here is the formatted message).
        return (
            CellError,
            (
                self.item_repr,
                self.index,
                self.error_type,
                self.error_message,
                self.worker_traceback,
            ),
        )
