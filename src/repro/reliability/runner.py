"""Fault-isolated, resumable execution of sweep cells.

:func:`run_cells` is the reliability counterpart of
:func:`repro.experiments.parallel.parallel_map`: same contract —
``worker(item)`` over a sequence, results in input order — but built
for the failure-as-normal-case regime the studied protocols live in:

* **Fault isolation.**  Each cell runs in its own forked process (one
  process per attempt, never a shared pool), so an exception, a hang,
  or an outright ``kill -9`` of one cell cannot take down the sweep.
  A cell that cannot produce a result yields a structured
  :class:`~repro.reliability.failures.CellFailure` in its slot instead
  of crashing the run.
* **Per-cell timeouts.**  ``RetryPolicy.timeout`` bounds each
  attempt's wall clock; an overdue worker is terminated (SIGTERM, then
  SIGKILL) and recorded as a ``timeout`` failure or retried.
* **Deterministic retries.**  Bounded attempts with exponential
  backoff whose jitter is seeded per ``(cell, attempt)`` — rerunning a
  flaky sweep replays the identical retry schedule.
* **Checkpoint/resume.**  With ``checkpoint=...`` every completed cell
  is journalled (see :mod:`repro.reliability.checkpoint`);
  ``resume=True`` loads the ledger, re-runs only the missing cells and
  returns outcomes indistinguishable from an uninterrupted run.
* **Observability.**  Progress is reported through the existing
  :mod:`repro.obs` layer when the parent registry is enabled:
  ``reliability.*`` counters (``retries``, ``failures``,
  ``failures.<kind>``, ``cells.completed``, ``cells.resumed``) and
  structured ``note`` events on every retry and terminal failure.

The in-process engine (``isolate=False``) exists for cheap workers and
unit tests: same retry/failure semantics minus timeouts and kill
survival (both need a process boundary, and the engine raises if asked
for them without one).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback as _traceback
from dataclasses import dataclass
from multiprocessing import connection as _mpc
from typing import Any, Callable, Sequence

from ..obs import OBS
from .checkpoint import CheckpointWriter, grid_fingerprint, read_checkpoint
from .failures import CellFailure
from .faults import FaultPlan, det_unit

__all__ = [
    "RetryPolicy",
    "CellOutcome",
    "SweepReport",
    "run_cells",
]

#: How long the parent waits on worker pipes per scheduling tick —
#: bounds timeout-detection latency without busy-waiting.
_POLL_SECONDS = 0.02

#: Grace period between SIGTERM and SIGKILL for an overdue worker.
_TERM_GRACE_SECONDS = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry behaviour for one sweep.

    Attributes:
        retries: extra attempts after the first (0 = fail fast).
        timeout: per-attempt wall-clock budget in seconds (``None`` =
            unbounded; requires process isolation).
        backoff: base delay before attempt ``k+1``, scaled by
            ``2**(k-1)`` and a deterministic jitter in ``[0.5, 1.5)``
            seeded per ``(seed, cell key, attempt)`` — reruns sleep the
            exact same schedule.
        seed: the jitter seed.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-running ``key`` after ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        jitter = 0.5 + det_unit(self.seed, key, attempt)
        return self.backoff * (2 ** (attempt - 1)) * jitter


@dataclass
class CellOutcome:
    """One cell's final state: exactly one of ``result`` / ``failure``.

    ``attempts`` counts every attempt made (including a resumed cell's
    historical attempts, read back from the ledger); ``resumed`` marks
    outcomes restored from a checkpoint rather than computed now.
    """

    index: int
    item: Any
    key: str
    attempts: int = 0
    result: Any = None
    failure: CellFailure | None = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SweepReport:
    """Everything :func:`run_cells` learned, in input order."""

    outcomes: list[CellOutcome]
    label: str
    fingerprint: str
    retries: int = 0

    @property
    def results(self) -> list:
        """Completed results in input order (failed cells omitted)."""
        return [o.result for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[CellFailure]:
        return [o.failure for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def render_failures(self) -> str:
        """A plain-text failure report (empty string when clean)."""
        if self.ok:
            return ""
        lines = [f"{len(self.failures)} of {len(self.outcomes)} cell(s) failed:"]
        lines += [f"  - {f.describe()}" for f in self.failures]
        return "\n".join(lines)


# -- obs emission -----------------------------------------------------

def _emit_retry(key: str, attempt: int, failure: CellFailure) -> None:
    if not OBS.enabled:
        return
    OBS.incr("reliability.retries")
    OBS.note(
        "reliability.retry",
        {"cell": key, "attempt": attempt, "kind": failure.kind,
         "error": failure.error_type},
    )


def _emit_failure(failure: CellFailure) -> None:
    if not OBS.enabled:
        return
    OBS.incr("reliability.failures")
    OBS.incr(f"reliability.failures.{failure.kind}")
    OBS.note(
        "reliability.failure",
        {"cell": failure.key, "kind": failure.kind,
         "attempts": failure.attempts, "error": failure.error_type,
         "message": failure.message},
    )


def _emit_completed(count: int = 1) -> None:
    if OBS.enabled and count:
        OBS.incr("reliability.cells.completed", count)


def _emit_resumed(count: int) -> None:
    if OBS.enabled and count:
        OBS.incr("reliability.cells.resumed", count)


# -- the isolated engine ----------------------------------------------

def _child_main(conn, worker, item, plan: FaultPlan | None, key: str) -> None:
    """Worker-process entry: run one cell, report over the pipe.

    Fault injection is installed before the cell runs: the plan's
    injector attaches to the (enabled) process-local registry so every
    ``trace()`` site inside the cell is a potential fault point.  A
    ``kill`` fault exits here without ever reaching the ``send`` —
    the parent sees a silent death, exactly like a real crash.
    """
    try:
        if plan is not None:
            injector = plan.injector(scope=key)
            OBS.enable()
            OBS.add_hook(injector)
        result = worker(item)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - reported, not suppressed
        try:
            conn.send(
                (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    "".join(
                        _traceback.format_exception(type(exc), exc, exc.__traceback__)
                    ),
                )
            )
        except Exception:
            pass  # parent will classify the silent death as a crash
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Attempt:
    index: int
    item: Any
    key: str
    attempt: int
    proc: Any = None
    conn: Any = None
    deadline: float | None = None


class _IsolatedEngine:
    """Process-per-attempt scheduler: spawn, watch, reap, retry.

    At most ``jobs`` workers run at once; completions are handled as
    they arrive (``multiprocessing.connection.wait``), deadlines are
    checked every tick, and retry backoff is honoured without blocking
    the loop.  Output slots are keyed by input index so ordering never
    depends on scheduling.
    """

    def __init__(self, worker, jobs: int, policy: RetryPolicy,
                 plan: FaultPlan | None, on_done, on_failed):
        self.worker = worker
        self.jobs = max(1, jobs)
        self.policy = policy
        self.plan = plan
        self.on_done = on_done          # (index, item, key, attempts, result)
        self.on_failed = on_failed      # (index, item, key, failure)
        self.retries = 0
        self._ctx = multiprocessing.get_context()

    def run(self, tasks: Sequence[tuple[int, Any, str]]) -> None:
        pending: list[tuple[float, int, Any, str, int]] = [
            (0.0, index, item, key, 1) for index, item, key in tasks
        ]
        pending.reverse()  # pop() from the end keeps input order
        running: dict[Any, _Attempt] = {}
        try:
            while pending or running:
                now = time.monotonic()
                self._spawn_ready(pending, running, now)
                if not running:
                    # Only backoff-delayed work left: sleep to the
                    # earliest ready time.
                    wake = min(entry[0] for entry in pending)
                    time.sleep(max(0.0, min(wake - time.monotonic(), 0.25)))
                    continue
                self._reap(pending, running)
        finally:
            for attempt in running.values():
                _terminate(attempt.proc)
                _close(attempt.conn)

    # -- scheduling ---------------------------------------------------

    def _spawn_ready(self, pending, running, now) -> None:
        # Scan from the end (input order); skip entries still backing off.
        i = len(pending) - 1
        while i >= 0 and len(running) < self.jobs:
            ready_at, index, item, key, attempt = pending[i]
            if ready_at <= now:
                pending.pop(i)
                self._spawn(running, index, item, key, attempt)
            i -= 1

    def _spawn(self, running, index, item, key, attempt) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self.worker, item, self.plan, key),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.policy.timeout
            if self.policy.timeout is not None
            else None
        )
        running[parent_conn] = _Attempt(
            index=index, item=item, key=key, attempt=attempt,
            proc=proc, conn=parent_conn, deadline=deadline,
        )

    # -- completion / failure handling --------------------------------

    def _reap(self, pending, running) -> None:
        ready = _mpc.wait(list(running), timeout=_POLL_SECONDS)
        for conn in ready:
            attempt = running.pop(conn)
            message = None
            try:
                if conn.poll():
                    message = conn.recv()
            except (EOFError, OSError):
                message = None
            _join(attempt.proc)
            _close(conn)
            if message is not None and message[0] == "ok":
                self.on_done(
                    attempt.index, attempt.item, attempt.key,
                    attempt.attempt, message[1],
                )
            elif message is not None:
                _, error_type, text, tb = message
                self._failed(
                    pending, attempt, kind="exception",
                    error_type=error_type, message=text, traceback_=tb,
                )
            else:
                exitcode = attempt.proc.exitcode
                self._failed(
                    pending, attempt, kind="crash", error_type="WorkerCrash",
                    message=(
                        f"worker died without reporting "
                        f"(exitcode {exitcode})"
                    ),
                    exitcode=exitcode,
                )
        if self.policy.timeout is None:
            return
        now = time.monotonic()
        for conn in [c for c, a in running.items() if a.deadline is not None
                     and a.deadline <= now]:
            attempt = running.pop(conn)
            _terminate(attempt.proc)
            _close(conn)
            self._failed(
                pending, attempt, kind="timeout", error_type="TimeoutError",
                message=(
                    f"cell exceeded the per-attempt timeout of "
                    f"{self.policy.timeout}s"
                ),
            )

    def _failed(self, pending, attempt: _Attempt, *, kind: str,
                error_type: str, message: str, traceback_: str = "",
                exitcode: int | None = None) -> None:
        failure = CellFailure(
            key=attempt.key, kind=kind, attempts=attempt.attempt,
            error_type=error_type, message=message, traceback=traceback_,
            exitcode=exitcode,
        )
        if attempt.attempt <= self.policy.retries:
            self.retries += 1
            _emit_retry(attempt.key, attempt.attempt, failure)
            ready_at = time.monotonic() + self.policy.delay(
                attempt.key, attempt.attempt
            )
            pending.append(
                (ready_at, attempt.index, attempt.item, attempt.key,
                 attempt.attempt + 1)
            )
        else:
            self.on_failed(attempt.index, attempt.item, attempt.key, failure)


def _close(conn) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _join(proc, timeout: float = 10.0) -> None:
    proc.join(timeout)
    if proc.is_alive():  # pragma: no cover - defensive
        _terminate(proc)


def _terminate(proc) -> None:
    if proc is None or not proc.is_alive():
        return
    proc.terminate()
    proc.join(_TERM_GRACE_SECONDS)
    if proc.is_alive():  # pragma: no cover - SIGTERM ignored
        proc.kill()
        proc.join()


# -- the in-process engine --------------------------------------------

def _run_inline(worker, tasks, policy: RetryPolicy,
                plan: FaultPlan | None, on_done, on_failed) -> int:
    """Same semantics as the isolated engine, minus the process wall.

    Catches worker ``Exception``s only (``KeyboardInterrupt`` et al.
    propagate); a fresh injector is installed per attempt so fault
    decisions match the isolated engine's per-cell determinism.
    """
    retries = 0
    for index, item, key in tasks:
        attempt = 1
        while True:
            injector = None
            if plan is not None:
                injector = plan.injector(scope=key)
                prev_enabled = OBS.enabled
                OBS.enable()
                OBS.add_hook(injector)
            try:
                result = worker(item)
            except Exception as exc:
                failure = CellFailure(
                    key=key, kind="exception", attempts=attempt,
                    error_type=type(exc).__name__, message=str(exc),
                    traceback="".join(
                        _traceback.format_exception(
                            type(exc), exc, exc.__traceback__
                        )
                    ),
                )
                if attempt <= policy.retries:
                    retries += 1
                    _emit_retry(key, attempt, failure)
                    delay = policy.delay(key, attempt)
                    if delay:
                        time.sleep(delay)
                    attempt += 1
                    continue
                on_failed(index, item, key, failure)
                break
            else:
                on_done(index, item, key, attempt, result)
                break
            finally:
                if injector is not None:
                    OBS.remove_hook(injector)
                    OBS.enabled = prev_enabled
    return retries


# -- the public entry point -------------------------------------------

def run_cells(
    worker: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    label: str = "sweep",
    key_fn: Callable[[Any], str] = repr,
    encode: Callable[[Any], Any] | None = None,
    decode: Callable[[Any], Any] | None = None,
    isolate: bool = True,
) -> SweepReport:
    """Run ``worker`` over ``items`` with fault isolation and resume.

    Args:
        worker: a picklable callable (module-level function or a
            :func:`functools.partial` of one) when ``isolate=True`` or
            ``jobs > 1``; any callable otherwise.
        items: the sweep grid, in the order results should come back.
        jobs: maximum concurrently-running cells.
        policy: retry/timeout behaviour (default: no retries, no
            timeout).
        faults: a :class:`~repro.reliability.faults.FaultPlan` to
            install in every cell (chaos testing).
        checkpoint: path of the JSONL ledger to journal progress into.
        resume: load ``checkpoint`` first and run only missing cells;
            when the file does not exist a fresh ledger is started.
        label: sweep identity string, pinned (with the cell keys) into
            the ledger fingerprint.
        key_fn: stable unique string key per item (default ``repr``).
        encode: item result -> JSON-ready payload for the ledger
            (default: identity — results must already be JSON-ready
            when checkpointing).
        decode: inverse of ``encode``, applied to ledger payloads when
            resuming (default: identity).
        isolate: run each attempt in its own forked process.  Required
            for ``policy.timeout`` and kill-action fault plans; the
            default everywhere the CLI is involved.

    Returns:
        A :class:`SweepReport` whose ``outcomes`` align 1:1 with
        ``items``; each outcome holds exactly one of ``result`` or
        ``failure`` — never neither, never both.

    Raises:
        ValueError: on duplicate cell keys, a ledger/grid mismatch, or
            an ``isolate=False`` request the policy cannot honour.
    """
    policy = policy or RetryPolicy()
    items = list(items)
    keys = [key_fn(item) for item in items]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate cell key(s): {dupes[:3]}")
    if not isolate:
        if policy.timeout is not None:
            raise ValueError("per-cell timeouts require isolate=True")
        if faults is not None and faults.has_kill:
            raise ValueError("kill-action fault plans require isolate=True")

    outcomes = [
        CellOutcome(index=i, item=item, key=key)
        for i, (item, key) in enumerate(zip(items, keys))
    ]
    by_key = {o.key: o for o in outcomes}
    fingerprint = grid_fingerprint(keys, label)

    # -- resume: restore completed cells from the ledger --------------
    writer = None
    todo = list(range(len(items)))
    if checkpoint is not None:
        from pathlib import Path

        decode = decode or (lambda payload: payload)
        if resume and Path(checkpoint).exists():
            ledger = read_checkpoint(checkpoint)
            ledger.check_grid(keys, label)
            for key, line in ledger.cells.items():
                outcome = by_key[key]
                outcome.result = decode(line["result"])
                outcome.attempts = line["attempts"]
                outcome.resumed = True
            todo = [i for i in todo if not outcomes[i].resumed]
            _emit_resumed(len(items) - len(todo))
        writer = CheckpointWriter(
            checkpoint, keys=keys, label=label, resume=resume,
            completed=len(items) - len(todo),
            meta={"jobs": jobs, "retries": policy.retries},
        )

    encode = encode or (lambda result: result)
    retries = 0

    def on_done(index, item, key, attempts, result):
        outcome = outcomes[index]
        outcome.result = result
        outcome.attempts = attempts
        _emit_completed()
        if writer is not None:
            writer.record_cell(key, encode(result), attempts)

    def on_failed(index, item, key, failure):
        outcomes[index].failure = failure
        outcomes[index].attempts = failure.attempts
        _emit_failure(failure)
        if writer is not None:
            writer.record_failure(failure)

    tasks = [(i, items[i], keys[i]) for i in todo]
    try:
        if tasks:
            if isolate:
                engine = _IsolatedEngine(
                    worker, jobs, policy, faults, on_done, on_failed
                )
                engine.run(tasks)
                retries = engine.retries
            else:
                retries = _run_inline(
                    worker, tasks, policy, faults, on_done, on_failed
                )
    finally:
        if writer is not None:
            writer.close()

    return SweepReport(
        outcomes=outcomes, label=label, fingerprint=fingerprint,
        retries=retries,
    )
