"""The WAF two-phased algorithm [10], as analyzed in Section III.

Phase 1: fix a rooted spanning tree ``T`` (we use the BFS tree, the
choice of [10]'s distributed implementation) and select the MIS ``I``
first-fit in BFS order.  Phase 2: let ``s`` be the neighbor of the root
adjacent to the largest number of nodes of ``I``; the connector set is

    ``C = {s} ∪ { parent_T(v) : v ∈ I \\ I(s) }``

where ``I(s) = I ∩ N[s]``.  Section III proves ``|I ∪ C| ≤ 7⅓ γ_c``
(Theorem 8), improving the earlier ``8 γ_c − 1`` of [10] and
``7.6 γ_c + 1.4`` of [12].

Correctness sketch (why ``I ∪ C`` is connected): the root is in ``I``
and in ``I(s)``; every other ``v ∈ I`` lies at tree depth ≥ 2, and its
parent — adjacent to ``v`` — was dominated at selection time by some
MIS node of strictly smaller depth, so induction on depth connects
every dominator to the root through ``C``.
"""

from __future__ import annotations

from typing import Hashable, TypeVar

import numpy as np

from ..graphs.array import ArrayGraph, gather_rows
from ..graphs.backend import build_kernel
from ..graphs.bitset import BitsetGraph, mask_of
from ..graphs.graph import Graph
from ..graphs.indexed import IndexedGraph
from ..mis.first_fit import FirstFitMIS, first_fit_mis
from ..obs import OBS, trace
from .base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["waf_cds", "waf_connectors"]


def waf_connectors(
    graph: Graph[N],
    mis: FirstFitMIS,
    index: IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N] | None = None,
) -> list[N]:
    """Phase 2 of WAF: ``{s}`` plus tree parents of ``I \\ I(s)``.

    Returns the connectors in a deterministic order (``s`` first, then
    parents in MIS selection order, deduplicated).  ``index`` optionally
    supplies a prebuilt kernel view of ``graph`` so the coverage scan
    runs on flat arrays with a byte-mask MIS membership test — on the
    bitset kernel, as one AND-plus-popcount per candidate against the
    MIS mask; on the array kernel, as one gather-plus-bincount over all
    candidates at once; the selected ``s`` (and hence the connectors)
    is identical every way.  Each candidate's coverage is computed
    exactly once, so ``waf.coverage_evaluations`` equals the root's
    degree.
    """
    tree = mis.tree
    root = tree.root
    mis_set = mis.as_set()
    root_neighbors = graph.neighbors(root)
    if not root_neighbors:
        return []
    # s: the root's neighbor adjacent to the most MIS nodes; ties to the
    # smallest node for determinism.
    if isinstance(index, BitsetGraph):
        id_of = index.id_of
        mis_mask = mask_of((id_of(v) for v in mis_set), len(index))
        nbr = index.neighbor_mask
        coverages = [(nbr(id_of(u)) & mis_mask).bit_count() for u in root_neighbors]
        if OBS.enabled:
            OBS.incr("bitset.word_ops", len(root_neighbors) * index.words)
            OBS.incr("bitset.popcounts", len(root_neighbors))
    elif isinstance(index, ArrayGraph):
        id_of = index.id_of
        in_mis = np.zeros(len(index), dtype=bool)
        in_mis[np.fromiter((id_of(v) for v in mis_set), dtype=np.int64)] = True
        ids = np.fromiter((id_of(u) for u in root_neighbors), dtype=np.int64)
        nbrs, counts = gather_rows(index.indptr, index.indices, ids)
        hits = in_mis[nbrs]
        owners = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
        coverages = np.bincount(owners[hits], minlength=ids.size).tolist()
        if OBS.enabled:
            OBS.incr("array.gather_elements", int(nbrs.size))
    elif index is not None:
        indptr, indices = index.indptr, index.indices
        in_mis = bytearray(len(index))
        for v in mis_set:
            in_mis[index.id_of(v)] = 1
        coverages = []
        for u in root_neighbors:
            ui = index.id_of(u)
            cov = 0
            for w in indices[indptr[ui] : indptr[ui + 1]]:
                cov += in_mis[w]
            coverages.append(cov)
    else:
        coverages = [
            sum(1 for w in graph.neighbors(u) if w in mis_set)
            for u in root_neighbors
        ]
    evaluations = len(root_neighbors)
    best = max(coverages)
    s = min(
        (u for u, cov in zip(root_neighbors, coverages) if cov == best),
        key=_sort_key,
    )
    covered_by_s = {w for w in graph.neighbors(s) if w in mis_set}

    connectors: list[N] = [s]
    seen: set[N] = {s}
    for v in mis.nodes:
        if v in covered_by_s or v == root:
            continue
        p = tree.parent[v]
        if p not in seen and p not in mis_set:
            connectors.append(p)
            seen.add(p)
    if OBS.enabled:
        OBS.incr("waf.coverage_evaluations", evaluations)
        OBS.incr("waf.connectors_chosen", len(connectors))
    return connectors


def waf_cds(
    graph: Graph[N],
    root: N | None = None,
    tree_kind: str = "bfs",
    kernel: str = "auto",
) -> CDSResult:
    """Run the full WAF two-phased algorithm.

    Args:
        graph: a connected topology (UDG for the guarantees to apply).
        root: tree root / leader; defaults to the smallest node.
        tree_kind: spanning tree driving phase 1 ("bfs" per [10], or
            "dfs" — Section III allows an arbitrary rooted tree).
        kernel: graph-kernel selection for the hot loops — one of
            :data:`~repro.graphs.backend.KERNELS`.  ``"auto"`` (default)
            resolves to the CSR kernel at every size: WAF's coverage
            scan walks short adjacency rows and is not mask-bound, so
            neither accelerated kernel's build pays for itself here
            (see ``docs/performance.md`` §large-n).  Pass ``"bitset"``
            or ``"array"`` explicitly to exercise the mask-based or
            vectorized coverage scan; the result is identical under
            every kernel.

    Returns:
        A validated-shape :class:`CDSResult` with ``dominators`` the
        phase-1 MIS and ``connectors`` the phase-2 set.

    Raises:
        ValueError: if the graph is empty or disconnected, or on an
            unknown ``kernel``.
    """
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="waf", nodes=frozenset([only]), dominators=(only,), connectors=()
        )
    index = build_kernel(graph, kernel, auto_bitset=False)
    with trace("waf.phase1"):
        mis = first_fit_mis(graph, root, tree_kind, index=index)
    with trace("waf.phase2"):
        connectors = waf_connectors(graph, mis, index)
    nodes = frozenset(mis.nodes) | frozenset(connectors)
    return CDSResult(
        algorithm="waf",
        nodes=nodes,
        dominators=tuple(mis.nodes),
        connectors=tuple(connectors),
        meta={"root": mis.tree.root, "s": connectors[0] if connectors else None},
    )


def _sort_key(node):
    try:
        return (0, node)
    except TypeError:  # pragma: no cover - defensive
        return (1, repr(node))
