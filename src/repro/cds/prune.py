"""CDS pruning: drop redundant nodes while staying a CDS.

Neither of the paper's algorithms prunes its output — the ratio proofs
bound the raw two-phase result.  Pruning is nevertheless the standard
post-processing in the CDS literature (e.g. Wu–Li Rules 1/2 are
pruning rules), so we expose it both as a utility and as an ablation:
``bench_ablation_pruning`` measures how much slack the two algorithms
leave on the table on random UDGs.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from ..graphs.graph import Graph
from ..graphs.properties import is_connected_dominating_set
from .base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["prune_cds", "prune_result"]


def prune_cds(graph: Graph[N], cds: Iterable[N]) -> list[N]:
    """Greedily remove nodes whose removal keeps the set a CDS.

    Scans candidates from highest degree to lowest (high-degree nodes
    are likelier to be covered by neighbors) and re-checks validity
    after each tentative removal.  The result is a minimal — not
    minimum — CDS contained in the input.

    Raises:
        ValueError: if the input is not a CDS of ``graph`` to begin with.
    """
    current = list(dict.fromkeys(cds))
    if not is_connected_dominating_set(graph, current):
        raise ValueError("input is not a connected dominating set")
    # Stable order: degree descending, then node order for determinism.
    order = sorted(range(len(current)), key=lambda i: -graph.degree(current[i]))
    kept = set(current)
    for i in order:
        v = current[i]
        if len(kept) == 1:
            break
        kept.discard(v)
        if not is_connected_dominating_set(graph, kept):
            kept.add(v)
    return [v for v in current if v in kept]


def prune_result(graph: Graph[N], result: CDSResult) -> CDSResult:
    """Pruned copy of a :class:`CDSResult` (algorithm label gets ``+prune``)."""
    pruned = prune_cds(graph, result.nodes)
    return CDSResult(
        algorithm=f"{result.algorithm}+prune",
        nodes=frozenset(pruned),
        meta={"before": result.size, "after": len(pruned)},
    )
