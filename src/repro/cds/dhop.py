"""d-hop connected dominating sets.

A standard generalization of the paper's problem: a *d-hop CDS* is a
connected set ``U`` with every node within ``d`` hops of some member.
``d = 1`` is exactly the paper's CDS; larger ``d`` trades a (much)
smaller backbone for longer access paths — the backbone-hierarchy knob
in clustering protocols.

Construction is the natural two-phased generalization: a greedy d-hop
dominating set (each pick covers the most still-uncovered nodes within
``d`` hops) interconnected with shortest-path connectors.  No constant
UDG ratio is claimed for ``d > 1``; the benchmark reports the size
curve over ``d``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import induced_is_connected, is_connected
from .base import CDSResult
from .steiner import steiner_connectors

N = TypeVar("N", bound=Hashable)

__all__ = ["d_hop_ball", "is_d_hop_dominating", "is_d_hop_cds", "d_hop_cds"]


def d_hop_ball(graph: Graph[N], center: N, d: int) -> set[N]:
    """All nodes within ``d`` hops of ``center`` (inclusive)."""
    if d < 0:
        raise ValueError("d must be non-negative")
    seen = {center}
    frontier = deque([(center, 0)])
    while frontier:
        u, dist = frontier.popleft()
        if dist == d:
            continue
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                frontier.append((v, dist + 1))
    return seen


def is_d_hop_dominating(graph: Graph[N], candidate: Iterable[N], d: int) -> bool:
    """Every node within ``d`` hops of some member of ``candidate``."""
    chosen = set(candidate)
    if not chosen <= set(graph.nodes()):
        return False
    covered: set[N] = set()
    for v in chosen:
        covered |= d_hop_ball(graph, v, d)
    return covered == set(graph.nodes())


def is_d_hop_cds(graph: Graph[N], candidate: Iterable[N], d: int) -> bool:
    """d-hop dominating and inducing a connected subgraph."""
    chosen = set(candidate)
    if not chosen:
        return False
    if not is_d_hop_dominating(graph, chosen, d):
        return False
    if len(chosen) == 1:
        return True
    return induced_is_connected(graph, chosen)


def d_hop_cds(graph: Graph[N], d: int = 1) -> CDSResult:
    """Greedy d-hop dominators + shortest-path connectors.

    Args:
        graph: connected, non-empty.
        d: domination radius (>= 1); ``d = 1`` is the classic problem.

    Raises:
        ValueError: on empty/disconnected input or ``d < 1``.
    """
    if d < 1:
        raise ValueError("d must be at least 1")
    if len(graph) == 0:
        raise ValueError("empty graph")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm=f"d{d}-hop", nodes=frozenset([only]))
    if not is_connected(graph):
        raise ValueError("graph must be connected")

    uncovered: set[N] = set(graph.nodes())
    dominators: list[N] = []
    while uncovered:
        def coverage(v: N) -> int:
            return len(d_hop_ball(graph, v, d) & uncovered)

        best = max(coverage(v) for v in graph)
        pick = min(v for v in graph if coverage(v) == best)
        dominators.append(pick)
        uncovered -= d_hop_ball(graph, pick, d)

    connectors = steiner_connectors(graph, dominators)
    return CDSResult(
        algorithm=f"d{d}-hop",
        nodes=frozenset(dominators) | frozenset(connectors),
        dominators=tuple(dominators),
        connectors=tuple(connectors),
    )
