"""Candidate-restricted lazy gain maximisation for the Section IV greedy.

:class:`~repro.cds.gain.GainTracker` re-scores **every** node of ``G``
on every connector round — ``O(n)`` gain evaluations per selection,
the dominant cost in `BENCH_baseline.json` (`gain.evaluations` = 2525
for 25 selections on the 150-node fixture).  Two structural facts make
almost all of that work redundant:

* **Candidate restriction.**  A node ``w ∉ I ∪ U`` has
  ``Δ_w q(U) ≥ 1`` only if it is adjacent to at least two components of
  ``G[I ∪ U]`` — in particular to at least one *included* node.  (This
  is the observation behind Lemma 9: because ``I`` is dominating, a
  useful connector is always a neighbor of the included set.)  So the
  argmax scan may be restricted to the frontier ``N(I ∪ U) \\ (I ∪ U)``
  without changing its outcome: every excluded node has gain 0 and a
  full scan never selects a zero-gain node (it raises instead).

* **Dirty-set invalidation.**  ``Δ_w q(U)`` is ``|{components of
  G[I ∪ U] adjacent to w}| − 1``.  That count changes only when (a) a
  component ``w`` was counted merges with anything, or (b) ``w`` gains
  a newly included neighbor.  Both happen only inside :meth:`add`, so a
  cached score stays exact until one of its *watched* component roots
  participates in a merge, or the added node is adjacent to ``w``.

:class:`LazyGainTracker` maintains exactly that: a candidate frontier,
a per-candidate cached gain, and a ``root → watching candidates`` map
driving invalidation.  Selections are **bit-identical** to the full
rescan under every tie-break mode — candidates are scanned in interned
id order, which is the source graph's iteration order, with the same
strict-improvement comparison — while ``gain.evaluations`` now counts
only genuine re-scores (cache misses), typically ``O(Δ)`` per round
instead of ``O(n)``.  The randomized equivalence suite in
``tests/cds/test_lazy_gain.py`` pins the equivalence against
:class:`~repro.cds.gain.GainTracker` on both counts.

The tracker runs on the interned CSR kernel
(:class:`repro.graphs.indexed.IndexedGraph`), so the inner loops index
flat arrays instead of hashing nodes; node objects appear only at the
API boundary (arguments, results, and tie comparisons, which must
compare the *original* node values to preserve semantics).
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from ..graphs.components import IntUnionFind
from ..graphs.indexed import IndexedGraph
from ..obs import OBS
from .gain import _smaller

N = TypeVar("N", bound=Hashable)

__all__ = ["LazyGainTracker"]


class LazyGainTracker:
    """Incremental components of ``G[I ∪ U]`` with lazy gain caching.

    The drop-in fast replacement for
    :class:`~repro.cds.gain.GainTracker` inside the greedy connector
    loop: same constructor contract (graph-wide topology plus the
    phase-1 dominators), same :meth:`add` / :meth:`best_connector`
    semantics and error cases, same counters except that
    ``gain.evaluations`` only counts actual re-scores.

    Args:
        index: the interned CSR view of the full topology ``G``
            (build once with :meth:`IndexedGraph.from_graph`).
        dominators: the phase-1 MIS ``I`` (any dominating set works;
            adjacent dominator pairs are merged permissively, exactly
            as :class:`~repro.cds.gain.GainTracker` does).
    """

    def __init__(self, index: IndexedGraph[N], dominators: Iterable[N]):
        self._index = index
        n = len(index)
        indptr, indices = index.indptr, index.indices
        included = bytearray(n)
        for d in dominators:
            if d not in index:
                raise KeyError(f"dominator {d!r} not in graph")
            included[index.id_of(d)] = 1
        self._included = included
        self._included_count = sum(included)
        if not self._included_count:
            raise ValueError("dominator set must be non-empty")
        self._dominators = frozenset(
            index.node_at(i) for i in range(n) if included[i]
        )
        # Components of G[I]: one per dominator, minus permissive merges
        # of adjacent (non-independent) dominator pairs.
        dsu = IntUnionFind(n)
        self._dsu = dsu
        components = self._included_count
        candidates: set[int] = set()
        for v in range(n):
            if not included[v]:
                continue
            for u in indices[indptr[v] : indptr[v + 1]]:
                if included[u]:
                    if dsu.union(u, v):
                        components -= 1
                else:
                    candidates.add(u)
        self._components = components
        self._candidates = candidates
        #: candidate id -> cached gain (exact while present).
        self._gain_cache: dict[int, int] = {}
        #: component root -> candidate ids whose cached score counted it.
        self._watchers: dict[int, set[int]] = {}

    # -- read API (mirrors GainTracker) ---------------------------------------

    @property
    def included(self) -> frozenset:
        """``I ∪ U`` so far, as original node objects."""
        index = self._index
        included = self._included
        return frozenset(
            index.node_at(i) for i in range(len(index)) if included[i]
        )

    @property
    def dominators(self) -> frozenset:
        return self._dominators

    @property
    def component_count(self) -> int:
        """``q(U)`` for the current ``U``."""
        return self._components

    def adjacent_components(self, w: N) -> set:
        """Roots of the components of ``G[I ∪ U]`` adjacent to ``w``.

        Roots are original node objects (of arbitrary representatives),
        one per adjacent component.
        """
        index = self._index
        return {index.node_at(r) for r in self._adjacent_roots(index.id_of(w))}

    def gain(self, w: N) -> int:
        """``Δ_w q(U)`` for the current ``U`` (computed fresh)."""
        wi = self._index.id_of(w)
        if self._included[wi]:
            return 0
        return max(0, len(self._adjacent_roots(wi)) - 1)

    def _adjacent_roots(self, wi: int) -> set[int]:
        indptr, indices = self._index.indptr, self._index.indices
        included = self._included
        find = self._dsu.find
        return {
            find(u) for u in indices[indptr[wi] : indptr[wi + 1]] if included[u]
        }

    # -- mutation -------------------------------------------------------------

    def add(self, w: N) -> int:
        """Add ``w`` to ``U`` and return the gain it realized.

        Performs the component merges and then invalidates exactly the
        caches the merge could have changed: every candidate watching a
        merged component, plus every non-included neighbor of ``w``
        (which both becomes/stays a candidate and gains an included
        neighbor).

        Raises:
            ValueError: if ``w`` is already included.
        """
        index = self._index
        wi = index.id_of(w)
        included = self._included
        if included[wi]:
            raise ValueError(f"{w!r} already included")
        roots = self._adjacent_roots(wi)

        gain_cache = self._gain_cache
        watchers = self._watchers
        # (a) merged components: their watchers must re-score.
        for r in roots:
            for c in watchers.pop(r, ()):
                gain_cache.pop(c, None)

        included[wi] = 1
        self._included_count += 1
        self._components += 1  # w's own new component...
        dsu = self._dsu
        for r in roots:
            if dsu.union(wi, r):
                self._components -= 1  # ...merged with each adjacent one.

        # (b) w's neighbors: new candidates / new included neighbor.
        candidates = self._candidates
        candidates.discard(wi)
        gain_cache.pop(wi, None)
        indptr, indices = index.indptr, index.indices
        for u in indices[indptr[wi] : indptr[wi + 1]]:
            if not included[u]:
                candidates.add(u)
                gain_cache.pop(u, None)
        if OBS.enabled:
            OBS.incr("gain.dsu_unions", len(roots))
        return max(0, len(roots) - 1)

    # -- selection ------------------------------------------------------------

    def best_connector(self, tie_break: str = "min") -> tuple[N, int]:
        """The not-yet-included node of maximum gain.

        Same argmax, tie-break semantics ("min" / "max" / "degree") and
        error cases as :meth:`GainTracker.best_connector`; only the
        amount of scoring work differs.  Candidates are visited in
        interned id order — the source graph's iteration order — so even
        pathological ties (unorderable node mixes with equal ``repr``)
        resolve identically to the full scan.
        """
        if tie_break not in ("min", "max", "degree"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if self._components <= 1:
            raise ValueError("already connected; no connector needed")
        index = self._index
        indptr, indices = index.indptr, index.indices
        nodes = index.nodes
        included = self._included
        find = self._dsu.find
        gain_cache = self._gain_cache
        watchers = self._watchers
        cache_get = gain_cache.get
        best_id = -1
        best_gain = 0
        evaluations = 0
        for c in sorted(self._candidates):
            g = cache_get(c)
            if g is None:
                roots = {
                    find(u)
                    for u in indices[indptr[c] : indptr[c + 1]]
                    if included[u]
                }
                g = len(roots) - 1
                evaluations += 1
                gain_cache[c] = g
                for r in roots:
                    watcher_set = watchers.get(r)
                    if watcher_set is None:
                        watcher_set = watchers[r] = set()
                    watcher_set.add(c)
            if g > best_gain or (
                g == best_gain > 0
                and self._wins_tie(c, best_id, tie_break)
            ):
                best_id, best_gain = c, g
        if OBS.enabled:
            OBS.incr("gain.evaluations", evaluations)
        if best_id < 0 or best_gain < 1:
            raise ValueError(
                "no node with positive gain: dominators lack 2-hop separation "
                "or the graph is disconnected"
            )
        return nodes[best_id], best_gain

    def _wins_tie(self, challenger: int, incumbent: int, tie_break: str) -> bool:
        if incumbent < 0:
            return True
        nodes = self._index.nodes
        if tie_break == "min":
            return _smaller(nodes[challenger], nodes[incumbent])
        if tie_break == "max":
            return _smaller(nodes[incumbent], nodes[challenger])
        ca = self._index.degree(challenger)
        cb = self._index.degree(incumbent)
        if ca != cb:
            return ca > cb
        return _smaller(nodes[challenger], nodes[incumbent])
