"""The paper's bound formulas, as executable functions.

Everything Sections I–IV state about sizes, collected in one place so
the experiments can print "paper bound vs measured" rows.  Each bound
is a function of ``gamma_c`` (the connected domination number) or of
``n`` (a star / connected-set size), matching the paper's statements:

==============================  ==========================================
``alpha_bound_wan2004``         ``alpha <= 4 gamma_c + 1``            [10]
``alpha_bound_wu2006``          ``alpha <= 3.8 gamma_c + 1.2``        [12]
``alpha_bound_this_paper``      ``alpha <= 11/3 gamma_c + 1``      (Cor 7)
``alpha_bound_funke_claim``     ``alpha <= 3.453 gamma_c + 8.291``  (conj.)
``phi``                         Theorem 3 star-neighborhood packing bound
``neighborhood_bound``          Theorem 6: ``|I(V)| <= 11n/3 + 1``
``waf_bound_wan2004``           ``|CDS| <= 8 gamma_c - 1``            [10]
``waf_bound_wu2006``            ``|CDS| <= 7.6 gamma_c + 1.4``        [12]
``waf_bound_this_paper``        Theorem 8: ``|CDS| <= 7 1/3 gamma_c``
``greedy_bound_this_paper``     Theorem 10: ``|CDS| <= 6 7/18 gamma_c``
``waf_bound_conjectured``       Section V conjecture: ``6 gamma_c``
``greedy_bound_conjectured``    Section V conjecture: ``5.5 gamma_c``
``lemma9_min_gain``             Lemma 9: best gain ``>= max(1, ceil(q/gamma_c)-1)``
==============================  ==========================================
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..geometry.packing import phi

__all__ = [
    "WAF_RATIO",
    "GREEDY_RATIO",
    "ALPHA_SLOPE",
    "phi",
    "alpha_bound_wan2004",
    "alpha_bound_wu2006",
    "alpha_bound_this_paper",
    "alpha_bound_funke_claim",
    "neighborhood_bound",
    "neighborhood_bound_capped_degree",
    "neighborhood_bound_intersecting",
    "waf_bound_wan2004",
    "waf_bound_wu2006",
    "waf_bound_this_paper",
    "greedy_bound_this_paper",
    "waf_bound_conjectured",
    "greedy_bound_conjectured",
    "lemma9_min_gain",
    "gamma_c_lower_bound_from_alpha",
]

#: Theorem 8 approximation ratio: 7 1/3.
WAF_RATIO: Fraction = Fraction(22, 3)
#: Theorem 10 approximation ratio: 6 7/18.
GREEDY_RATIO: Fraction = Fraction(115, 18)
#: Corollary 7 slope: 3 2/3.
ALPHA_SLOPE: Fraction = Fraction(11, 3)


def alpha_bound_wan2004(gamma_c: int) -> float:
    """``4 gamma_c + 1`` — the loose relation from [10]."""
    return 4.0 * gamma_c + 1.0


def alpha_bound_wu2006(gamma_c: int) -> float:
    """``3.8 gamma_c + 1.2`` — the refined relation from [12]."""
    return 3.8 * gamma_c + 1.2


def alpha_bound_this_paper(gamma_c: int) -> Fraction:
    """Corollary 7: ``alpha <= 3 2/3 gamma_c + 1`` (connected UDG, n >= 2)."""
    return ALPHA_SLOPE * gamma_c + 1


def alpha_bound_funke_claim(gamma_c: int) -> float:
    """The *unproven* claim of [7]: ``3.453 gamma_c + 8.291``.

    Section V demotes this to a conjecture; we expose it so experiments
    can show where it would sit relative to the proven bounds.
    """
    return 3.453 * gamma_c + 8.291


def neighborhood_bound(n: int) -> Fraction:
    """Theorem 6: ``|I(V)| <= 11 n / 3 + 1`` for connected ``V``, n >= 2."""
    if n < 2:
        raise ValueError("Theorem 6 requires n >= 2")
    return Fraction(11, 3) * n + 1


def neighborhood_bound_capped_degree(n: int) -> Fraction:
    """Theorem 6 variant: ``<= 11 n / 3`` when every ``|I(v)| <= 4``."""
    if n < 2:
        raise ValueError("Theorem 6 requires n >= 2")
    return Fraction(11, 3) * n


def neighborhood_bound_intersecting(n: int) -> Fraction:
    """Theorem 6 variant: ``<= 11 n / 3 - 1`` when ``V ∩ I ≠ ∅``."""
    if n < 2:
        raise ValueError("Theorem 6 requires n >= 2")
    return Fraction(11, 3) * n - 1


def waf_bound_wan2004(gamma_c: int) -> float:
    """The original bound of [10]: ``8 gamma_c - 1``."""
    return 8.0 * gamma_c - 1.0


def waf_bound_wu2006(gamma_c: int) -> float:
    """The [12] improvement: ``7.6 gamma_c + 1.4``."""
    return 7.6 * gamma_c + 1.4


def waf_bound_this_paper(gamma_c: int) -> Fraction:
    """Theorem 8: ``|I ∪ C| <= 7 1/3 gamma_c``."""
    return WAF_RATIO * gamma_c


def greedy_bound_this_paper(gamma_c: int) -> Fraction:
    """Theorem 10: ``|I ∪ C| <= 6 7/18 gamma_c``."""
    return GREEDY_RATIO * gamma_c


def waf_bound_conjectured(gamma_c: int) -> float:
    """Section V: ratio 6, conditional on the 3(n+1) packing conjecture."""
    return 6.0 * gamma_c


def greedy_bound_conjectured(gamma_c: int) -> float:
    """Section V: ratio 5.5, conditional on the 3(n+1) packing conjecture."""
    return 5.5 * gamma_c


def lemma9_min_gain(q: int, gamma_c: int) -> int:
    """Lemma 9: while ``q > 1`` some node has gain at least this."""
    if q <= 1:
        return 0
    if gamma_c < 1:
        raise ValueError("gamma_c must be >= 1")
    return max(1, math.ceil(q / gamma_c) - 1)


def gamma_c_lower_bound_from_alpha(alpha: int) -> int:
    """Corollary 7 inverted: ``gamma_c >= 3 (alpha - 1) / 11``.

    Since any MIS size lower-bounds nothing but alpha does, feeding the
    *exact* independence number gives a certified lower bound on
    ``gamma_c`` — and because phase 1's output ``|I| <= alpha``, even a
    heuristic MIS gives a valid (weaker) bound.  Used by the ratio
    experiments when exact ``gamma_c`` is out of reach.
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    return max(1, math.ceil(Fraction(3 * (alpha - 1), 11)))
