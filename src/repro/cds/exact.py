"""Exact minimum connected dominating set — ``gamma_c(G)``.

The paper proves worst-case ratios; to *measure* ratios on sampled
instances we need the true optimum.  Minimum CDS is NP-hard, so this is
a branch-and-bound over connected vertex subsets, built for the
experiment sizes (n up to ~35 on UDG densities):

* iterate target sizes ``k`` from a certified lower bound upward;
* enumerate connected induced subsets of size ``k`` by growing a
  frontier (each subset is generated once via the standard
  "extension only by higher-indexed border nodes" trick);
* prune a partial subset when even ``(k - |S|)`` more nodes of maximum
  closed-neighborhood size cannot dominate the rest.

Lower bounds used: the trivial ``n / (Δ+1)`` domination bound and the
paper's own Corollary 7 inverted (``gamma_c >= 3(alpha' - 1)/11`` for
any independent set of size ``alpha'`` — we feed it a cheap MIS).

:func:`minimum_mfold_cds` generalizes the same search to the exact
minimum ``(1, m)``-CDS (connected m-fold dominating set), which is what
makes the empirical ratios of :mod:`repro.cds.mfold` measurable.  The
m-fold feasibility test counts per-node coverage instead of unioning
closed neighborhoods, and the seeding uses
:func:`gamma_mfold_lower_bound` — the naive ``n / (Δ+1)`` bound is
*wrong* for ``m > 1`` (it ignores that each non-member consumes ``m``
units of supply, and that nodes with ``deg < m`` are forced members).
"""

from __future__ import annotations

import math
from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.properties import is_connected_dominating_set, is_m_fold_cds
from ..graphs.traversal import is_connected
from ..mis.greedy import lexicographic_mis
from .bounds import gamma_c_lower_bound_from_alpha

N = TypeVar("N", bound=Hashable)

__all__ = [
    "minimum_cds",
    "minimum_mfold_cds",
    "connected_domination_number",
    "mfold_connected_domination_number",
    "gamma_c_lower_bound",
    "gamma_mfold_lower_bound",
]


def gamma_c_lower_bound(graph: Graph[N]) -> int:
    """A certified lower bound on ``gamma_c``.

    Max of the degree bound ``ceil(n / (Δ+1))`` (any dominating set
    needs that many nodes) and the Corollary 7 bound fed with a greedy
    MIS (valid because ``|MIS| <= alpha``).  Returns at least 1.
    """
    n = len(graph)
    if n <= 1:
        return min(n, 1)
    degree_bound = math.ceil(n / (graph.max_degree() + 1))
    mis_size = len(lexicographic_mis(graph))
    corollary_bound = gamma_c_lower_bound_from_alpha(mis_size)
    return max(1, degree_bound, corollary_bound)


def gamma_mfold_lower_bound(graph: Graph[N], m: int) -> int:
    """A certified lower bound on ``gamma_{c,m}`` (minimum (1,m)-CDS).

    The max of four valid bounds:

    * ``min(m, n)`` — a proper subset leaves some node outside, and
      that node alone needs ``m`` distinct dominators;
    * the **demand bound** ``ceil(m*n / (Δ + m))`` — every node carries
      ``m`` units of demand (members meet their own by membership,
      capacity ``m``; each member supplies at most one unit to each of
      its ``<= Δ`` neighbors), so supply ``|D|(Δ + m)`` must cover
      demand ``m*n``.  At ``m=1`` this is exactly the classic
      ``n/(Δ+1)``;
    * the **forced-member count** ``|{v : deg(v) < m}|`` — a node with
      fewer than ``m`` neighbors can never be m-dominated from outside,
      so it must be in every m-fold dominating set.  This is the
      closed-neighborhood-deficit bound the naive seed misses: on the
      star ``K_{1,5}`` with ``m=2`` it certifies 5 while ``n/(Δ+1)``
      says 1;
    * :func:`gamma_c_lower_bound` — a connected m-fold dominating set
      is in particular a CDS, so every ``gamma_c`` bound applies.

    Raises:
        ValueError: for ``m < 1``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    n = len(graph)
    if n <= 1:
        return min(n, 1)
    max_deg = graph.max_degree()
    demand_bound = math.ceil(m * n / (max_deg + m))
    forced = sum(1 for v in graph if graph.degree(v) < m)
    return max(min(m, n), demand_bound, forced, gamma_c_lower_bound(graph))


def minimum_cds(graph: Graph[N], upper_bound: int | None = None) -> list[N]:
    """A minimum connected dominating set of a connected graph.

    Args:
        graph: connected, non-empty.
        upper_bound: optional known CDS size (e.g. from a heuristic);
            the search never considers sizes above it.

    Returns:
        An optimal CDS as a list (in discovery order).

    Raises:
        ValueError: if the graph is empty or disconnected.
    """
    n = len(graph)
    if n == 0:
        raise ValueError("minimum CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    if n == 1:
        return [next(iter(graph))]
    # gamma_c = 1 iff some node dominates everything.
    for v in graph:
        if graph.degree(v) == n - 1:
            return [v]

    nodes = graph.nodes()
    index = {v: i for i, v in enumerate(nodes)}
    closed: dict[N, set[N]] = {v: graph.closed_neighborhood(v) for v in nodes}
    max_closed = max(len(c) for c in closed.values())
    all_nodes = set(nodes)

    hi = upper_bound if upper_bound is not None else n
    lo = gamma_c_lower_bound(graph)

    for k in range(lo, hi + 1):
        found = _search_size_k(graph, nodes, index, closed, max_closed, all_nodes, k)
        if found is not None:
            return found
    raise AssertionError("no CDS found up to the upper bound; bound was wrong")


def _search_size_k(
    graph: Graph[N],
    nodes: list[N],
    index: dict[N, int],
    closed: dict[N, set[N]],
    max_closed: int,
    all_nodes: set[N],
    k: int,
) -> list[N] | None:
    """Find a connected dominating subset of exactly ``k`` nodes, or None.

    Enumerates connected subsets by seed + frontier extension.  To avoid
    generating a subset once per seed, the seed is required to be the
    *minimum-index* node of the subset: extensions only use nodes of
    higher index than the seed.
    """

    def dominated(subset: list[N]) -> bool:
        cover: set[N] = set()
        for v in subset:
            cover |= closed[v]
        return cover == all_nodes

    def prune(subset: list[N], slots_left: int) -> bool:
        """True if the partial subset can be pruned."""
        cover: set[N] = set()
        for v in subset:
            cover |= closed[v]
        return len(all_nodes) - len(cover) > slots_left * max_closed

    def extend(
        subset: list[N], border: list[N], forbidden: set[N], seed_idx: int
    ) -> list[N] | None:
        if len(subset) == k:
            return list(subset) if dominated(subset) else None
        if prune(subset, k - len(subset)):
            return None
        in_subset = set(subset)
        for i, w in enumerate(border):
            # Border nodes before w are *rejected* in this branch: a
            # subset containing any of them is generated by the sibling
            # branch that picked it, which keeps enumeration duplicate-free.
            branch_forbidden = forbidden | set(border[:i])
            new_border = list(border[i + 1 :])
            on_border = set(new_border)
            for u in graph.neighbors(w):
                if (
                    index[u] > seed_idx
                    and u not in in_subset
                    and u != w
                    and u not in branch_forbidden
                    and u not in on_border
                ):
                    new_border.append(u)
                    on_border.add(u)
            result = extend(subset + [w], new_border, branch_forbidden, seed_idx)
            if result is not None:
                return result
        return None

    for seed in nodes:
        si = index[seed]
        border = [u for u in graph.neighbors(seed) if index[u] > si]
        result = extend([seed], border, set(), si)
        if result is not None:
            assert is_connected_dominating_set(graph, result)
            return result
    return None


def minimum_mfold_cds(
    graph: Graph[N], m: int, upper_bound: int | None = None
) -> list[N]:
    """A minimum ``(1, m)``-CDS (connected m-fold dominating set).

    Same branch-and-bound skeleton as :func:`minimum_cds` — sizes from
    :func:`gamma_mfold_lower_bound` upward, connected subsets via the
    min-index-seed frontier enumeration — with m-aware feasibility
    (every non-member needs ``m`` subset neighbors) and pruning (one
    more member erases at most ``m + Δ`` units of remaining coverage
    deficit).  ``D = V`` is always feasible on a connected graph, so
    the search terminates.

    Args:
        graph: connected, non-empty.
        m: coverage multiplicity (``m >= 1``).
        upper_bound: optional known (1,m)-CDS size to cap the search.

    Returns:
        An optimal (1,m)-CDS as a list (in discovery order).

    Raises:
        ValueError: empty/disconnected graph or ``m < 1``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    n = len(graph)
    if n == 0:
        raise ValueError("minimum (1,m)-CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    if n == 1:
        return [next(iter(graph))]
    if m == 1:
        for v in graph:
            if graph.degree(v) == n - 1:
                return [v]

    nodes = graph.nodes()
    index = {v: i for i, v in enumerate(nodes)}
    max_deg = graph.max_degree()

    hi = upper_bound if upper_bound is not None else n
    lo = gamma_mfold_lower_bound(graph, m)

    for k in range(lo, hi + 1):
        found = _search_mfold_size_k(graph, nodes, index, m, max_deg, k)
        if found is not None:
            return found
    raise AssertionError("no (1,m)-CDS found up to the upper bound; bound was wrong")


def _search_mfold_size_k(
    graph: Graph[N],
    nodes: list[N],
    index: dict[N, int],
    m: int,
    max_deg: int,
    k: int,
) -> list[N] | None:
    """A connected m-fold dominating subset of exactly ``k`` nodes, or None.

    The enumeration is the duplicate-free seed + frontier scheme of
    :func:`_search_size_k`; only the feasibility and prune predicates
    change.
    """

    def coverage(subset: list[N]) -> dict[N, int]:
        cnt: dict[N, int] = {}
        for w in subset:
            for u in graph.neighbors(w):
                cnt[u] = cnt.get(u, 0) + 1
        return cnt

    def dominated(subset: list[N]) -> bool:
        in_subset = set(subset)
        cnt = coverage(subset)
        return all(v in in_subset or cnt.get(v, 0) >= m for v in nodes)

    def prune(subset: list[N], slots_left: int) -> bool:
        in_subset = set(subset)
        cnt = coverage(subset)
        deficit = sum(
            max(0, m - cnt.get(v, 0)) for v in nodes if v not in in_subset
        )
        # A new member erases its own deficit (<= m) and supplies one
        # unit to each of its <= Δ neighbors.
        return deficit > slots_left * (m + max_deg)

    def extend(
        subset: list[N], border: list[N], forbidden: set[N], seed_idx: int
    ) -> list[N] | None:
        if len(subset) == k:
            return list(subset) if dominated(subset) else None
        if prune(subset, k - len(subset)):
            return None
        in_subset = set(subset)
        for i, w in enumerate(border):
            branch_forbidden = forbidden | set(border[:i])
            new_border = list(border[i + 1 :])
            on_border = set(new_border)
            for u in graph.neighbors(w):
                if (
                    index[u] > seed_idx
                    and u not in in_subset
                    and u != w
                    and u not in branch_forbidden
                    and u not in on_border
                ):
                    new_border.append(u)
                    on_border.add(u)
            result = extend(subset + [w], new_border, branch_forbidden, seed_idx)
            if result is not None:
                return result
        return None

    for seed in nodes:
        si = index[seed]
        border = [u for u in graph.neighbors(seed) if index[u] > si]
        result = extend([seed], border, set(), si)
        if result is not None:
            assert is_m_fold_cds(graph, result, m)
            return result
    return None


def connected_domination_number(graph: Graph[N]) -> int:
    """``gamma_c(G)``: the size of a minimum CDS."""
    return len(minimum_cds(graph))


def mfold_connected_domination_number(graph: Graph[N], m: int) -> int:
    """``gamma_{c,m}(G)``: the size of a minimum (1,m)-CDS."""
    return len(minimum_mfold_cds(graph, m))
