"""Word-parallel gain maximisation for the Section IV greedy.

:class:`~repro.cds.lazy_gain.LazyGainTracker` (PR 2) cut the greedy
loop's re-scoring from ``O(n)`` per round to the cache misses its
watcher map cannot rule out — but that map is *conservative*: when a
component merges, **every** candidate that counted it is invalidated,
and once a giant component forms, nearly every candidate watches it.
On a 1000-node UDG that is ≈240 re-scores per round, ~30k over the run,
and it is the dominant cost of the whole solver.  This tracker replaces
the watcher map with bitmask algebra that invalidates *exactly* the
candidates whose gain changed, and makes each remaining step
word-parallel:

* **Exact invalidation.**  Adding ``w`` merges ``w`` with the adjacent
  components ``P₁..Pₖ``.  A candidate's count of adjacent components
  changes only if it is adjacent to **two or more** of the merging
  parts ``{w, P₁..Pₖ}``, or is a neighbor of ``w`` (its candidacy or
  ``w``-adjacency is new).  Keeping one neighborhood mask per live
  component makes "adjacent to ≥ 2 parts" a pairwise-overlap
  accumulation — ``seen_twice |= seen_once & part; seen_once |= part``
  — a handful of whole-mask ops per merge instead of a per-watcher
  walk.  (A candidate adjacent to exactly one part and not to ``w``
  keeps its count: the one part it counted still counts once merged.)

* **Gain-level buckets.**  Cached scores live in per-gain bitmasks
  (``levels[g]`` = candidates whose exact gain is ``g``), so the argmax
  is "highest non-empty level" — no per-round scan of the candidate
  set, which :class:`LazyGainTracker` still pays (``sorted`` over all
  candidates every round).  Gain-0 candidates are cached but never
  bucketed: no level is read below ``g = 1``.

* **Two bit spaces, each where it pays.**  Adjacency algebra runs in
  *id* space, straight off the view's bulk
  :attr:`~repro.graphs.bitset.BitsetGraph.neighbor_masks` list (built
  once per solve and shared with the MIS cover scan — the tracker
  touches essentially every row, so there is exactly one mask set per
  run).  The level buckets alone live in *value-rank*
  space — bit position order is ascending node-value order — so the
  "min" tie-break is the lowest set bit of the best level
  (``(m & -m).bit_length() - 1``) and "max" its highest, O(1) instead
  of a comparison per tied candidate at any instance size.  Graphs
  whose nodes are not mutually orderable fall back to interned-id bit
  order with explicit value comparisons, exactly
  :meth:`LazyGainTracker._wins_tie`.

Selections are **bit-identical** to :class:`LazyGainTracker` (and so to
the reference :class:`~repro.cds.gain.GainTracker`) under every
tie-break mode; the randomized suite in ``tests/cds/test_bitset.py``
pins the full ``(node, gain)`` sequence equivalence.  The
``gain.evaluations`` counter keeps its PR 2 meaning — genuine re-scores
— and shrinks further because exact invalidation re-scores strictly
fewer candidates than the watcher map.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from ..graphs.bitset import BitsetGraph, bit_indices, mask_of, value_sort_keys
from ..graphs.components import IntUnionFind
from ..obs import OBS
from .gain import _smaller

N = TypeVar("N", bound=Hashable)

__all__ = ["BitsetGainTracker"]


class BitsetGainTracker:
    """Incremental components of ``G[I ∪ U]`` on neighborhood bitmasks.

    The bitset-kernel counterpart of
    :class:`~repro.cds.lazy_gain.LazyGainTracker`: same constructor
    contract, same :meth:`add` / :meth:`best_connector` semantics and
    error cases, same counters (``gain.dsu_unions`` per merge attempt;
    ``gain.evaluations`` = actual re-scores only, here strictly fewer
    because invalidation is exact instead of per-watched-component).

    Args:
        bitset: the bitset view of the full topology ``G``; the
            tracker binds the view's bulk mask list (building it on
            first use), sharing one mask set with every other phase of
            the solve.
        dominators: the phase-1 MIS ``I`` (any dominating set works;
            adjacent dominator pairs are merged permissively).
    """

    __slots__ = (
        "_bitset",
        "_index",
        "_masks",
        "_order",
        "_valrank",
        "_value_ranked",
        "_included",
        "_included_count",
        "_dominators",
        "_dsu",
        "_components",
        "_comp_nbr",
        "_frontier",
        "_gains",
        "_valid",
        "_levels",
        "_degrees",
    )

    def __init__(self, bitset: BitsetGraph[N], dominators: Iterable[N]):
        self._bitset = bitset
        index = bitset.indexed
        self._index = index
        n = len(index)
        nodes = index.nodes
        # Level-bucket bit space: ascending node-value order when the
        # nodes admit one (so min/max ties are lsb/msb), id order
        # otherwise.  ``order``: rank -> id; ``valrank``: id -> rank.
        try:
            order = sorted(range(n), key=value_sort_keys(nodes).__getitem__)
            value_ranked = True
        except TypeError:
            order = list(range(n))
            value_ranked = False
        self._order = order
        self._value_ranked = value_ranked
        valrank = [0] * n
        for r, i in enumerate(order):
            valrank[i] = r
        self._valrank = valrank

        dom_ids = []
        for d in dominators:
            if d not in index:
                raise KeyError(f"dominator {d!r} not in graph")
            dom_ids.append(index.id_of(d))
        if not dom_ids:
            raise ValueError("dominator set must be non-empty")
        included = mask_of(dom_ids, n)
        self._included = included
        self._included_count = included.bit_count()
        self._dominators = frozenset(nodes[i] for i in bit_indices(included))

        # Components of G[I]: one per dominator, minus permissive merges
        # of adjacent (non-independent) dominator pairs; alongside, the
        # frontier N(I) and one neighborhood mask per component.  The
        # tracker touches essentially every row over a run, so it binds
        # the bulk mask list (already forced by the greedy pipeline).
        masks = bitset.neighbor_masks
        self._masks = masks
        dsu = IntUnionFind(n)
        self._dsu = dsu
        union = dsu.union
        components = self._included_count
        frontier = 0
        included_ids = bit_indices(included)
        for v in included_ids:
            m = masks[v]
            frontier |= m
            adjacent_included = m & included
            if adjacent_included:
                for u in bit_indices(adjacent_included):
                    if union(u, v):
                        components -= 1
        self._components = components
        self._frontier = frontier
        find = dsu.find
        comp_nbr: dict[int, int] = {}
        for v in included_ids:
            r = find(v)
            prev = comp_nbr.get(r)
            comp_nbr[r] = masks[v] if prev is None else prev | masks[v]
        self._comp_nbr = comp_nbr

        #: per-id cached gain, exact where the id bit is set in _valid.
        self._gains = [0] * n
        self._valid = 0
        #: levels[g] = rank-space bitmask of valid candidates with exact
        #: gain g >= 1 (gain-0 candidates are cached in _gains only).
        self._levels: list[int] = [0]
        self._degrees: list[int] | None = None
        if OBS.enabled:
            OBS.incr("bitset.word_ops", (2 * len(comp_nbr) + 2) * bitset.words)

    # -- read API (mirrors LazyGainTracker) ------------------------------------

    @property
    def included(self) -> frozenset:
        """``I ∪ U`` so far, as original node objects."""
        nodes = self._index.nodes
        return frozenset(nodes[i] for i in bit_indices(self._included))

    @property
    def dominators(self) -> frozenset:
        return self._dominators

    @property
    def component_count(self) -> int:
        """``q(U)`` for the current ``U``."""
        return self._components

    def adjacent_components(self, w: N) -> set:
        """Roots of the components of ``G[I ∪ U]`` adjacent to ``w``.

        Roots are original node objects (of arbitrary representatives),
        one per adjacent component.
        """
        nodes = self._index.nodes
        return {nodes[r] for r in self._roots_of(self._index.id_of(w))}

    def gain(self, w: N) -> int:
        """``Δ_w q(U)`` for the current ``U`` (computed fresh)."""
        wi = self._index.id_of(w)
        if self._included >> wi & 1:
            return 0
        return max(0, len(self._roots_of(wi)) - 1)

    def _roots_of(self, wi: int) -> set[int]:
        dsu = self._dsu
        parent = dsu._parent
        find = dsu.find
        m = self._masks[wi] & self._included
        roots: set[int] = set()
        seen = roots.add
        while m:
            lsb = m & -m
            m ^= lsb
            u = lsb.bit_length() - 1
            r = parent[u]
            if parent[r] != r:
                r = find(u)
            seen(r)
        return roots

    # -- mutation -------------------------------------------------------------

    def add(self, w: N) -> int:
        """Add ``w`` to ``U`` and return the gain it realized.

        Merges ``w`` with its adjacent components and invalidates
        exactly the candidates whose adjacent-component count could
        have changed: the pairwise overlap of the merging parts'
        neighborhood masks, plus ``N(w)``.

        Raises:
            ValueError: if ``w`` is already included.
        """
        index = self._index
        wi = index.id_of(w)
        included = self._included
        wbit = 1 << wi
        if included & wbit:
            raise ValueError(f"{w!r} already included")
        wmask = self._masks[wi]
        roots = self._roots_of(wi)

        # Merge the parts' neighborhood masks, accumulating the bits
        # seen in two or more of the *old* parts — those candidates'
        # counts change.  A candidate adjacent to exactly one old part
        # keeps its count even if it neighbors ``w`` (the one part it
        # counted is the merged component it now counts once); a
        # neighbor of ``w`` adjacent to no old part gains a component.
        comp_nbr = self._comp_nbr
        seen_once = 0
        seen_twice = 0
        for r in roots:
            part = comp_nbr.pop(r)
            seen_twice |= seen_once & part
            seen_once |= part

        included |= wbit
        self._included = included
        self._included_count += 1
        self._frontier |= wmask
        # Merge w's fresh singleton with each adjacent root.  All roots
        # are distinct and w is fresh, so every union merges; the
        # union-by-size bookkeeping is inlined on the DSU's arrays.
        dsu = self._dsu
        parent, size = dsu._parent, dsu._size
        base = wi
        for r in roots:
            if size[base] < size[r]:
                parent[base] = r
                size[r] += size[base]
                base = r
            else:
                parent[r] = base
                size[base] += size[r]
        dsu._count -= len(roots)
        self._components += 1 - len(roots)
        comp_nbr[base] = seen_once | wmask

        # Evict the stale scores: for each invalidated candidate that
        # holds a level bit, clear exactly that bit (levels are
        # rank-space, the stale set id-space, so eviction is per-bit —
        # a handful of nodes per round, by exactness).
        stale = ((seen_twice | (wmask & ~seen_once)) & ~included) | wbit
        evict = stale & self._valid
        if evict:
            gains = self._gains
            valrank = self._valrank
            levels = self._levels
            while evict:
                lsb = evict & -evict
                evict ^= lsb
                c = lsb.bit_length() - 1
                g = gains[c]
                if g:
                    levels[g] &= ~(1 << valrank[c])
            self._valid &= ~stale
        if OBS.enabled:
            OBS.incr("gain.dsu_unions", len(roots))
            OBS.incr(
                "bitset.word_ops",
                (2 * len(roots) + 8) * self._bitset.words,
            )
        return max(0, len(roots) - 1)

    # -- selection ------------------------------------------------------------

    def best_connector(self, tie_break: str = "min") -> tuple[N, int]:
        """The not-yet-included node of maximum gain.

        Same argmax, tie-break semantics ("min" / "max" / "degree") and
        error cases as :meth:`LazyGainTracker.best_connector`.  Only
        candidates invalidated since the last round are re-scored; the
        argmax itself reads the highest non-empty gain level and
        resolves ties inside that one bitmask.
        """
        if tie_break not in ("min", "max", "degree"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if self._components <= 1:
            raise ValueError("already connected; no connector needed")
        levels = self._levels
        stale = (self._frontier & ~self._included) & ~self._valid
        evaluations = 0
        if stale:
            masks = self._masks
            included = self._included
            dsu = self._dsu
            parent = dsu._parent
            find = dsu.find
            gains = self._gains
            valrank = self._valrank
            remaining = stale
            comp_nbr = self._comp_nbr
            k = stale.bit_count()
            if k > 4 * len(comp_nbr):
                # Population-scale rescore (the first round scores every
                # candidate at once): instead of per-candidate DSU
                # walks, accumulate "adjacent to >= j parts" masks over
                # the per-component neighborhood masks — word-parallel
                # in the population — and read exact gains off the
                # cascade (gain = #adjacent parts - 1, parts counted
                # once each by construction).
                cap = 8
                s = [0] * (cap + 1)
                p = 0
                for part in comp_nbr.values():
                    p += 1
                    for j in range(min(p, cap), 1, -1):
                        s[j] |= s[j - 1] & part
                    s[1] |= part
                for j in range(2, cap):
                    bucket = s[j] & ~s[j + 1] & stale
                    if not bucket:
                        continue
                    g = j - 1
                    while g >= len(levels):
                        levels.append(0)
                    lev = levels[g]
                    while bucket:
                        lsb = bucket & -bucket
                        bucket ^= lsb
                        c = lsb.bit_length() - 1
                        gains[c] = g
                        lev |= 1 << valrank[c]
                    levels[g] = lev
                # Gain-0 candidates need no level bit (levels[0] is
                # never read); candidates beyond the cascade cap — if
                # any — fall through to the per-candidate path.
                remaining = s[cap] & stale
                evaluations = k - remaining.bit_count()
                if OBS.enabled:
                    OBS.incr(
                        "bitset.word_ops",
                        (min(len(comp_nbr), cap) + cap) * self._bitset.words,
                    )
            while remaining:
                clsb = remaining & -remaining
                remaining ^= clsb
                c = clsb.bit_length() - 1
                # Adjacent components of c: drain the (sparse) mask of
                # included neighbors lowest-bit first.  A single
                # included neighbor is gain 0 without touching the DSU.
                m = masks[c] & included
                lsb = m & -m
                if m == lsb:
                    gains[c] = 0
                    evaluations += 1
                    continue
                roots = set()
                seen = roots.add
                while m:
                    lsb = m & -m
                    m ^= lsb
                    u = lsb.bit_length() - 1
                    r = parent[u]
                    if parent[r] != r:
                        r = find(u)
                    seen(r)
                g = len(roots) - 1
                gains[c] = g
                if g:
                    while g >= len(levels):
                        levels.append(0)
                    levels[g] |= 1 << valrank[c]
                evaluations += 1
            self._valid |= stale
        if OBS.enabled:
            OBS.incr("gain.evaluations", evaluations)
            OBS.incr(
                "bitset.word_ops", (2 * evaluations + 4) * self._bitset.words
            )
        for g in range(len(levels) - 1, 0, -1):
            m = levels[g]
            if m:
                break
        else:
            raise ValueError(
                "no node with positive gain: dominators lack 2-hop separation "
                "or the graph is disconnected"
            )
        return self._index.nodes[self._order[self._pick(m, tie_break)]], g

    def _pick(self, m: int, tie_break: str) -> int:
        """Resolve a gain tie inside the level mask ``m`` (non-empty);
        returns the winner's *rank* (bit position in level space)."""
        nodes, order = self._index.nodes, self._order
        if tie_break == "degree":
            degrees = self._degrees
            if degrees is None:
                degree = self._index.degree
                degrees = self._degrees = [degree(i) for i in order]
            best = -1
            best_deg = -1
            if self._value_ranked:
                # Ascending rank is ascending value: the first maximum
                # seen is the smallest tied node.
                for c in bit_indices(m):
                    d = degrees[c]
                    if d > best_deg:
                        best, best_deg = c, d
            else:
                for c in bit_indices(m):
                    d = degrees[c]
                    if d > best_deg or (
                        d == best_deg
                        and _smaller(nodes[order[c]], nodes[order[best]])
                    ):
                        best, best_deg = c, d
            return best
        if self._value_ranked:
            # Bit order is value order: min = lowest set bit, max = highest.
            if tie_break == "min":
                return (m & -m).bit_length() - 1
            return m.bit_length() - 1
        # Unorderable node mix: bit order is interned id order; compare
        # node values explicitly, as LazyGainTracker._wins_tie does.
        bits = bit_indices(m)
        best = bits[0]
        if tie_break == "min":
            for c in bits[1:]:
                if _smaller(nodes[order[c]], nodes[order[best]]):
                    best = c
        else:
            for c in bits[1:]:
                if _smaller(nodes[order[best]], nodes[order[c]]):
                    best = c
        return best
