"""Common result type for CDS algorithms.

Every construction algorithm in :mod:`repro.cds` and
:mod:`repro.baselines` returns a :class:`CDSResult`, so the experiment
harness can treat them uniformly: final node set, the phase-1/phase-2
split where the algorithm has one, and the algorithm label for tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from ..graphs.properties import is_connected_dominating_set

N = TypeVar("N", bound=Hashable)

__all__ = ["CDSResult"]


@dataclass(frozen=True)
class CDSResult:
    """The output of a CDS construction.

    Attributes:
        algorithm: short label, e.g. ``"waf"`` or ``"greedy-connector"``.
        nodes: the connected dominating set.
        dominators: phase-1 nodes (the MIS), when the algorithm is
            two-phased; otherwise equal to ``nodes``.
        connectors: phase-2 nodes, in selection order where meaningful.
        meta: algorithm-specific extras (e.g. the gain history of the
            Section IV greedy, used by the C1/C2/C3 analysis).
    """

    algorithm: str
    nodes: frozenset
    dominators: tuple = ()
    connectors: tuple = ()
    meta: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.dominators or self.connectors:
            combined = set(self.dominators) | set(self.connectors)
            if combined != set(self.nodes):
                raise ValueError(
                    f"{self.algorithm}: dominators+connectors do not equal the CDS"
                )

    @property
    def size(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node) -> bool:
        return node in self.nodes

    def is_valid(self, graph: Graph[N]) -> bool:
        """Whether the node set really is a CDS of ``graph``."""
        return is_connected_dominating_set(graph, self.nodes)

    def validate(self, graph: Graph[N]) -> "CDSResult":
        """Return self if valid, raise otherwise.

        Chained by callers that want hard failure on broken output:
        ``waf_cds(g).validate(g)``.
        """
        if not self.is_valid(graph):
            raise AssertionError(f"{self.algorithm} produced an invalid CDS")
        return self
