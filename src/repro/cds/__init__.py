"""The paper's contribution: two-phased CDS construction and bounds.

* :func:`waf_cds` — the WAF algorithm of [10], ratio ``7 1/3`` (Thm 8).
* :func:`greedy_connector_cds` — the paper's new Section IV algorithm,
  ratio ``6 7/18`` (Thm 10).
* :mod:`repro.cds.bounds` — every bound the paper states, executable.
* :func:`minimum_cds` — exact ``gamma_c`` for measuring real ratios.
"""

from .base import CDSResult
from .gain import GainTracker, component_count, gain_of
from .lazy_gain import LazyGainTracker
from .bitset_gain import BitsetGainTracker
from .waf import waf_cds, waf_connectors
from .greedy_connector import greedy_connector_cds, greedy_connectors
from .steiner import steiner_cds, steiner_connectors
from .exact import (
    connected_domination_number,
    gamma_c_lower_bound,
    gamma_mfold_lower_bound,
    mfold_connected_domination_number,
    minimum_cds,
    minimum_mfold_cds,
)
from .mfold import (
    augment_biconnected,
    mfold_2conn_cds,
    mfold_dominators,
    mfold_greedy_cds,
)
from .prune import prune_cds, prune_result
from .maintenance import DynamicCDS, RepairStats
from .weighted import cds_weight, weighted_greedy_cds
from .dhop import d_hop_ball, d_hop_cds, is_d_hop_cds, is_d_hop_dominating
from . import bounds
from .bounds import (
    ALPHA_SLOPE,
    GREEDY_RATIO,
    WAF_RATIO,
    alpha_bound_this_paper,
    greedy_bound_this_paper,
    lemma9_min_gain,
    waf_bound_this_paper,
)

__all__ = [
    "CDSResult",
    "GainTracker",
    "LazyGainTracker",
    "BitsetGainTracker",
    "component_count",
    "gain_of",
    "waf_cds",
    "waf_connectors",
    "greedy_connector_cds",
    "greedy_connectors",
    "steiner_cds",
    "steiner_connectors",
    "connected_domination_number",
    "gamma_c_lower_bound",
    "gamma_mfold_lower_bound",
    "mfold_connected_domination_number",
    "minimum_cds",
    "minimum_mfold_cds",
    "augment_biconnected",
    "mfold_2conn_cds",
    "mfold_dominators",
    "mfold_greedy_cds",
    "prune_cds",
    "prune_result",
    "DynamicCDS",
    "RepairStats",
    "cds_weight",
    "weighted_greedy_cds",
    "d_hop_ball",
    "d_hop_cds",
    "is_d_hop_cds",
    "is_d_hop_dominating",
    "bounds",
    "ALPHA_SLOPE",
    "GREEDY_RATIO",
    "WAF_RATIO",
    "alpha_bound_this_paper",
    "greedy_bound_this_paper",
    "lemma9_min_gain",
    "waf_bound_this_paper",
]
