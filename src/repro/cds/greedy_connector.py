"""The paper's new two-phased algorithm (Section IV).

Phase 1 is identical to WAF: the BFS first-fit MIS ``I``.  Phase 2
selects connectors *greedily by gain*: while ``G[I ∪ C]`` has more than
one component, add the node ``w ∈ V \\ (I ∪ C)`` whose addition merges
the most components (maximum ``Δ_w q(C)``).  Lemma 9 guarantees such a
node always exists with gain ≥ 1 (indeed ≥ ⌈q/γ_c⌉ − 1 for some node of
the optimum), so the loop terminates with a CDS.

Theorem 10 bounds the output by ``6 7/18 γ_c`` via the C1/C2/C3 prefix
decomposition; the recorded ``gain_history`` and ``q_history`` in the
result's ``meta`` let the analysis module re-derive that decomposition
on concrete runs (see :func:`repro.analysis.bounds_check.prefix_decomposition`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from ..graphs.array import ArrayGraph
from ..graphs.backend import build_kernel, gain_tracker
from ..graphs.bitset import BitsetGraph
from ..graphs.graph import Graph
from ..graphs.indexed import IndexedGraph
from ..mis.first_fit import _smallest_node, first_fit_mis_nodes
from ..obs import OBS, trace
from .base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["greedy_connector_cds", "greedy_connectors"]


def greedy_connectors(
    graph: Graph[N],
    dominators: Iterable[N],
    tie_break: str = "min",
    index: IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N] | None = None,
) -> tuple[list[N], list[int], list[int]]:
    """Run the greedy phase 2 on an already-chosen dominating set.

    Selection runs on the gain tracker matching ``index``'s kernel
    (:func:`repro.graphs.backend.gain_tracker`:
    :class:`~repro.cds.lazy_gain.LazyGainTracker` on the CSR view,
    :class:`~repro.cds.bitset_gain.BitsetGainTracker` on the bitset
    view, :class:`~repro.cds.array_gain.ArrayGainTracker` on the array
    view) — all candidate-restricted, cache-invalidating, and
    bit-identical to the reference :class:`~repro.cds.gain.GainTracker`
    rescan under every tie-break mode (the randomized suites in
    ``tests/cds/test_lazy_gain.py``, ``tests/cds/test_bitset.py`` and
    ``tests/cds/test_array_gain.py`` hold the trackers to the same
    ``(node, gain)`` sequence).

    Args:
        graph: the connected topology.
        dominators: the phase-1 MIS (any dominating set with the 2-hop
            separation property works; Lemma 9 needs it).
        tie_break: gain tie resolution ("min" / "max" / "degree"),
            forwarded to the tracker's ``best_connector``.
        index: optional prebuilt kernel view of ``graph``; a CSR view
            is built here when absent (callers running several phases
            should build one kernel once and thread it through).

    Returns:
        ``(connectors, gain_history, q_history)`` where ``q_history[i]``
        is ``q`` *before* the i-th selection (so ``q_history[0] = |I|``)
        plus a final entry of 1.
    """
    if index is None:
        index = IndexedGraph.from_graph(graph)
    tracker = gain_tracker(index, dominators)
    connectors: list[N] = []
    gains: list[int] = []
    q_values: list[int] = [tracker.component_count]
    while tracker.component_count > 1:
        w, g = tracker.best_connector(tie_break)
        realized = tracker.add(w)
        assert realized == g
        connectors.append(w)
        gains.append(g)
        q_values.append(tracker.component_count)
    if OBS.enabled:
        OBS.incr("greedy.connectors_chosen", len(connectors))
    return connectors, gains, q_values


def greedy_connector_cds(
    graph: Graph[N],
    root: N | None = None,
    tie_break: str = "min",
    kernel: str = "auto",
) -> CDSResult:
    """Run the full Section IV algorithm.

    Args:
        graph: a connected topology (UDG for the guarantee to apply).
        root: phase-1 tree root / leader; defaults to the smallest node.
        tie_break: gain tie resolution ("min" / "max" / "degree").
        kernel: graph-kernel selection for the hot loops — one of
            :data:`~repro.graphs.backend.KERNELS`.  ``"auto"`` (default)
            picks by instance size (the three-way table in
            :func:`~repro.graphs.backend.choose_kernel`); the result is
            identical under every kernel.

    Returns:
        :class:`CDSResult` with ``meta['gain_history']`` and
        ``meta['q_history']`` recording the greedy trajectory.

    Raises:
        ValueError: if the graph is empty or disconnected, or on an
            unknown ``kernel``.
    """
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="greedy-connector",
            nodes=frozenset([only]),
            dominators=(only,),
            connectors=(),
        )
    index = build_kernel(graph, kernel)
    if isinstance(index, BitsetGraph):
        # The gain tracker touches essentially every row; forcing the
        # bulk mask build up front lets the MIS cover scan share the
        # flat list instead of warming per-row cache entries it would
        # immediately supersede.
        index.neighbor_masks
    if root is None:
        root = _smallest_node(graph)
    with trace("greedy.phase1"):
        # The greedy never reads tree parents, so phase 1 skips the
        # spanning-tree assembly the WAF connector phase needs.
        mis_nodes = first_fit_mis_nodes(graph, root, index=index)
    with trace("greedy.phase2"):
        connectors, gains, q_values = greedy_connectors(
            graph, mis_nodes, tie_break, index
        )
    nodes = frozenset(mis_nodes) | frozenset(connectors)
    return CDSResult(
        algorithm="greedy-connector",
        nodes=nodes,
        dominators=mis_nodes,
        connectors=tuple(connectors),
        meta={
            "root": root,
            "gain_history": tuple(gains),
            "q_history": tuple(q_values),
        },
    )
