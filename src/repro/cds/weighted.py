"""Node-weighted CDS construction.

In real sensor networks backbone duty costs energy, and nodes differ in
how much they can spare; the natural generalization is *minimum-weight*
CDS.  The paper treats the unweighted problem; this extension adapts
the Guha–Khuller tree growth to weights: each step blackens the gray
node with the best ``weight / newly-dominated`` ratio, the weighted
set-cover rule.

No UDG-specific constant ratio is claimed (the paper's packing
machinery does not transfer to weights); the ablation benchmark
measures the cost-vs-size tradeoff against the unweighted algorithms.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Mapping, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import is_connected
from .base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["weighted_greedy_cds", "cds_weight"]


def cds_weight(result: CDSResult, weight: Mapping | Callable[[object], float]) -> float:
    """Total weight of a CDS under a weight map or function."""
    get = weight.__getitem__ if isinstance(weight, Mapping) else weight
    return sum(float(get(v)) for v in result.nodes)


def weighted_greedy_cds(
    graph: Graph[N], weight: Mapping[N, float] | Callable[[N], float]
) -> CDSResult:
    """Grow a CDS minimizing weight per newly dominated node.

    Args:
        graph: connected, non-empty.
        weight: positive node weights (mapping or callable).

    Raises:
        ValueError: on empty/disconnected input or non-positive weights.
    """
    if len(graph) == 0:
        raise ValueError("empty graph")
    get = weight.__getitem__ if isinstance(weight, Mapping) else weight
    weights: dict[N, float] = {}
    for v in graph.nodes():
        w = float(get(v))
        if w <= 0.0 or not math.isfinite(w):
            raise ValueError(f"weight of {v!r} must be positive and finite")
        weights[v] = w
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(algorithm="weighted-greedy", nodes=frozenset([only]))
    if not is_connected(graph):
        raise ValueError("graph must be connected")

    white: set[N] = set(graph.nodes())
    gray: set[N] = set()
    black: list[N] = []

    def coverage(v: N) -> int:
        count = 1 if v in white else 0
        return count + sum(1 for u in graph.neighbors(v) if u in white)

    def blacken(v: N) -> None:
        white.discard(v)
        gray.discard(v)
        black.append(v)
        for u in graph.neighbors(v):
            if u in white:
                white.discard(u)
                gray.add(u)

    # Seed: globally best cost-effectiveness.
    seed = min(graph.nodes(), key=lambda v: weights[v] / coverage(v))
    blacken(seed)
    while white:
        best_v: N | None = None
        best_score = math.inf
        for v in gray:
            gain = coverage(v)
            if gain == 0:
                continue
            score = weights[v] / gain
            if score < best_score:
                best_score, best_v = score, v
        if best_v is None:
            # All frontier nodes dominate nothing new (white nodes hide
            # beyond gray-but-unproductive ones): force the cheapest
            # gray expansion toward them.
            best_v = min(gray, key=lambda v: weights[v])
        blacken(best_v)

    return CDSResult(
        algorithm="weighted-greedy",
        nodes=frozenset(black),
        meta={"total_weight": sum(weights[v] for v in black)},
    )
