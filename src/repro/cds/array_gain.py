"""Vectorized gain maximisation for the Section IV greedy.

The array-kernel counterpart of
:class:`~repro.cds.lazy_gain.LazyGainTracker` and
:class:`~repro.cds.bitset_gain.BitsetGainTracker`.  The bitset tracker
owns the mid range, but both its memory and its per-round cost scale
with ``n`` (``n²/8``-byte masks, ``⌈n/64⌉``-word ops per whole-mask
step): at ``n = 10⁶`` the masks alone would be 125 GB.  This tracker
keeps every per-round step proportional to the *work actually caused*
by the round — no ``O(n)`` or ``O(n/64)`` term anywhere — and batches
the remaining element work through numpy:

* **Eager component labels.**  ``comp_id`` maps every included id to
  its component's root eagerly (weighted relabel on merge: the smaller
  member list is rewritten with one vectorized scatter, ``O(n log n)``
  ids moved over a whole run), so re-scoring never walks a union-find —
  a candidate batch's adjacent components are one gather plus one
  ``np.unique`` over ``owner·n + root`` keys.

* **Batched re-scoring over the dirty frontier.**  Invalidated
  candidates accumulate between selections and are re-scored as one
  vectorized batch: gather all their neighbor rows
  (:func:`~repro.graphs.array.gather_rows`), keep the included ones,
  count distinct ``(candidate, root)`` pairs, and scatter the new gains
  back into the dense ``gains`` array.  ``gain.evaluations`` keeps its
  meaning — candidates actually re-scored.

* **Watcher lists with a base-exempt pop.**  Like the lazy tracker,
  each scored candidate with gain ≥ 1 registers under the roots it
  counted; unlike it, a merge never pops the *surviving* (base) root's
  list.  Exactness argument: a candidate's count can only change if it
  is adjacent to two or more of the merging parts — so it is registered
  under at least one non-base part — or if it neighbors the added node
  ``w`` (both sources are invalidated).  Gain-0 candidates never
  register at all: with one adjacent component, only a new included
  neighbor can change their count, and ``N(w)`` is always invalidated.
  This is what removes the lazy tracker's giant-component pathology
  without the bitset tracker's whole-mask overlap algebra.

* **Lazy max-heaps per tie-break.**  Selection pops a heap of
  ``(-gain, rank, id)`` entries (rank = position in ascending node
  value order, exactly the bitset tracker's level bit space), with
  stale entries discarded against the dense ``gains`` array — amortized
  ``O(log)`` per (re)score instead of a per-round candidate scan.
  Graphs whose nodes are not mutually orderable fall back to the lazy
  tracker's explicit ascending-id scan with value comparisons.

Selections are **bit-identical** to both other trackers (and so to the
reference :class:`~repro.cds.gain.GainTracker`) under every tie-break
mode; the randomized suite in ``tests/cds/test_array_gain.py`` pins the
full ``(node, gain)`` sequence across all three kernels.  Counters:
``gain.dsu_unions`` keeps its per-merge meaning, ``gain.evaluations``
counts re-scored candidates, and the vector paths report
``array.rescore_batches`` / ``array.gather_elements``.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, TypeVar

import numpy as np

from ..graphs.array import ArrayGraph, gather_rows
from ..graphs.bitset import value_sort_keys
from ..obs import OBS
from .gain import _smaller

N = TypeVar("N", bound=Hashable)

__all__ = ["ArrayGainTracker"]


class ArrayGainTracker:
    """Incremental components of ``G[I ∪ U]`` on numpy CSR arrays.

    Same constructor contract, :meth:`add` / :meth:`best_connector`
    semantics and error cases as the other trackers; only the data
    layout (dense numpy arrays, batched re-scoring) differs.

    Args:
        array: the array-kernel view of the full topology ``G``.
        dominators: the phase-1 MIS ``I`` (any dominating set works;
            adjacent dominator pairs are merged permissively).
    """

    __slots__ = (
        "_array",
        "_index",
        "_indptr",
        "_indices",
        "_n",
        "_order",
        "_valrank",
        "_value_ranked",
        "_included",
        "_included_count",
        "_dominators",
        "_comp_id",
        "_members",
        "_components",
        "_watchers",
        "_gains",
        "_pending",
        "_heaps",
        "_degrees",
    )

    def __init__(self, array: ArrayGraph[N], dominators: Iterable[N]):
        self._array = array
        index = array.indexed
        self._index = index
        indptr = array.indptr
        indices = array.indices
        self._indptr = indptr
        self._indices = indices
        n = len(index)
        self._n = n
        nodes = index.nodes
        # Tie-break rank space: ascending node-value order when the
        # nodes admit one (heap entries then order by rank), id order
        # plus explicit value comparisons otherwise.
        try:
            order = sorted(range(n), key=value_sort_keys(nodes).__getitem__)
            value_ranked = True
        except TypeError:
            order = list(range(n))
            value_ranked = False
        self._order = order
        self._value_ranked = value_ranked
        valrank = [0] * n
        for r, i in enumerate(order):
            valrank[i] = r
        self._valrank = valrank

        dom_ids = []
        for d in dominators:
            if d not in index:
                raise KeyError(f"dominator {d!r} not in graph")
            dom_ids.append(index.id_of(d))
        if not dom_ids:
            raise ValueError("dominator set must be non-empty")
        included = np.zeros(n, dtype=bool)
        dom_arr = np.array(sorted(set(dom_ids)), dtype=np.int64)
        included[dom_arr] = True
        self._included = included
        self._included_count = int(dom_arr.size)
        self._dominators = frozenset(nodes[int(i)] for i in dom_arr)

        # Components of G[I]: one per dominator, minus permissive merges
        # of adjacent (non-independent) dominator pairs.  comp_id labels
        # every included id with its root eagerly; members lists back
        # the weighted relabel.
        comp_id = np.arange(n, dtype=np.int64)
        self._comp_id = comp_id
        members: dict[int, list[int]] = {int(i): [int(i)] for i in dom_arr}
        self._members = members
        self._components = self._included_count
        nbrs, counts = gather_rows(indptr, indices, dom_arr)
        inc_mask = included[nbrs]
        if inc_mask.any():
            # A proper MIS has no included-included arcs; this loop only
            # runs for permissive (non-independent) dominating sets.
            owners = np.repeat(dom_arr, counts)[inc_mask]
            for v, u in zip(owners.tolist(), nbrs[inc_mask].tolist()):
                self._merge_pair(int(v), int(u))

        #: dense gain cache; exact for every scored, non-pending id.
        self._gains = np.zeros(n, dtype=np.int64)
        #: root id -> candidate ids whose cached gain counted it (may
        #: hold stale duplicates; filtered on pop).
        self._watchers: dict[int, list[int]] = {}
        #: invalidated-candidate chunks awaiting the next batch rescore;
        #: seeded with the whole initial frontier N(I) \\ I.
        self._pending: list[np.ndarray] = [np.unique(nbrs[~inc_mask])]
        #: per-tie-break lazy max-heaps, created on first use.
        self._heaps: dict[str, list] = {}
        self._degrees: list[int] | None = None

    def _merge_pair(self, v: int, u: int) -> None:
        """Union the components of two included ids (init-time only)."""
        comp_id = self._comp_id
        rv, ru = int(comp_id[v]), int(comp_id[u])
        if rv == ru:
            return
        members = self._members
        if len(members[rv]) < len(members[ru]):
            rv, ru = ru, rv
        moved = members.pop(ru)
        comp_id[np.array(moved, dtype=np.int64)] = rv
        members[rv].extend(moved)
        self._components -= 1

    # -- read API (mirrors LazyGainTracker) ------------------------------------

    @property
    def included(self) -> frozenset:
        """``I ∪ U`` so far, as original node objects."""
        nodes = self._index.nodes
        return frozenset(
            nodes[int(i)] for i in np.flatnonzero(self._included)
        )

    @property
    def dominators(self) -> frozenset:
        return self._dominators

    @property
    def component_count(self) -> int:
        """``q(U)`` for the current ``U``."""
        return self._components

    def adjacent_components(self, w: N) -> set:
        """Roots of the components of ``G[I ∪ U]`` adjacent to ``w``.

        Roots are original node objects (of arbitrary representatives),
        one per adjacent component.
        """
        nodes = self._index.nodes
        return {
            nodes[int(r)] for r in self._roots_of(self._index.id_of(w))
        }

    def gain(self, w: N) -> int:
        """``Δ_w q(U)`` for the current ``U`` (computed fresh)."""
        wi = self._index.id_of(w)
        if self._included[wi]:
            return 0
        return max(0, self._roots_of(wi).size - 1)

    def _roots_of(self, wi: int) -> np.ndarray:
        nbrs = self._indices[self._indptr[wi] : self._indptr[wi + 1]]
        return np.unique(self._comp_id[nbrs[self._included[nbrs]]])

    # -- mutation -------------------------------------------------------------

    def add(self, w: N) -> int:
        """Add ``w`` to ``U`` and return the gain it realized.

        Merges ``w`` with its adjacent components (weighted relabel
        into the largest part) and queues for re-scoring exactly the
        candidates whose count could have changed: the watchers of
        every merged non-base root, plus ``N(w)``.

        Raises:
            ValueError: if ``w`` is already included.
        """
        index = self._index
        wi = int(index.id_of(w))
        included = self._included
        if included[wi]:
            raise ValueError(f"{w!r} already included")
        roots = self._roots_of(wi)

        comp_id = self._comp_id
        members = self._members
        watchers = self._watchers
        pending = self._pending
        # Base: the largest merging part (w's fresh singleton included),
        # ties to the smallest root id for determinism.
        base = wi
        base_size = 1
        for r in roots.tolist():
            size = len(members[r])
            if size > base_size or (size == base_size and r < base):
                base, base_size = r, size
        if base == wi:
            members[wi] = [wi]
        else:
            comp_id[wi] = base
            members[base].append(wi)
        for r in roots.tolist():
            if r == base:
                continue
            moved = members.pop(r)
            comp_id[np.array(moved, dtype=np.int64)] = base
            members[base].extend(moved)
            stale = watchers.pop(r, None)
            if stale:
                pending.append(np.array(stale, dtype=np.int64))

        included[wi] = True
        self._included_count += 1
        merged = int(roots.size)
        self._components += 1 - merged

        nbrs = self._indices[self._indptr[wi] : self._indptr[wi + 1]]
        fresh = nbrs[~included[nbrs]]
        if fresh.size:
            pending.append(fresh)
        if OBS.enabled:
            OBS.incr("gain.dsu_unions", merged)
        return max(0, merged - 1)

    # -- selection ------------------------------------------------------------

    def _rescore_pending(self) -> None:
        """Re-score every queued candidate as one vectorized batch."""
        pending = self._pending
        if not pending:
            return
        cand = np.unique(np.concatenate(pending))
        pending.clear()
        included = self._included
        cand = cand[~included[cand]]
        if not cand.size:
            return
        n = self._n
        nbrs, counts = gather_rows(self._indptr, self._indices, cand)
        inc_mask = included[nbrs]
        owners = np.repeat(np.arange(cand.size, dtype=np.int64), counts)[inc_mask]
        roots = self._comp_id[nbrs[inc_mask]]
        # Distinct (candidate, root) pairs -> adjacent-component counts.
        pairs = np.unique(owners * n + roots)
        pair_owner = pairs // n
        cnt = np.bincount(pair_owner, minlength=cand.size)
        gains = np.maximum(cnt - 1, 0)
        self._gains[cand] = gains
        # Register watchers for candidates with >= 2 adjacent parts
        # (gain-0 candidates cannot lose a part without it merging into
        # another part of theirs, and gaining one goes through N(w)).
        multi = cnt[pair_owner] >= 2
        if multi.any():
            watchers = self._watchers
            reg_c = cand[pair_owner[multi]].tolist()
            reg_r = (pairs[multi] % n).tolist()
            for c, r in zip(reg_c, reg_r):
                lst = watchers.get(r)
                if lst is None:
                    watchers[r] = [c]
                else:
                    lst.append(c)
        if self._heaps:
            pos = np.flatnonzero(gains >= 1)
            if pos.size:
                ids = cand[pos].tolist()
                gs = gains[pos].tolist()
                for tie_break, heap in self._heaps.items():
                    push = heapq.heappush
                    for c, g in zip(ids, gs):
                        push(heap, self._entry(tie_break, c, g))
        if OBS.enabled:
            OBS.incr("gain.evaluations", int(cand.size))
            OBS.incr("array.rescore_batches")
            OBS.incr("array.gather_elements", int(nbrs.size))

    def _entry(self, tie_break: str, c: int, g: int) -> tuple:
        valrank = self._valrank
        if tie_break == "min":
            return (-g, valrank[c], c)
        if tie_break == "max":
            return (-g, -valrank[c], c)
        degrees = self._degrees
        if degrees is None:
            degree = self._index.degree
            degrees = self._degrees = [degree(i) for i in range(self._n)]
        return (-g, -degrees[c], valrank[c], c)

    def _heap_for(self, tie_break: str) -> list:
        heap = self._heaps.get(tie_break)
        if heap is None:
            gains = self._gains
            live = np.flatnonzero((gains >= 1) & ~self._included)
            heap = [
                self._entry(tie_break, int(c), int(gains[c])) for c in live
            ]
            heapq.heapify(heap)
            self._heaps[tie_break] = heap
        return heap

    def best_connector(self, tie_break: str = "min") -> tuple[N, int]:
        """The not-yet-included node of maximum gain.

        Same argmax, tie-break semantics ("min" / "max" / "degree") and
        error cases as the other trackers.  Queued invalidations are
        re-scored in one vectorized batch, then the per-tie-break heap
        yields the winner after discarding entries the batch outdated.
        """
        if tie_break not in ("min", "max", "degree"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if self._components <= 1:
            raise ValueError("already connected; no connector needed")
        self._rescore_pending()
        if not self._value_ranked:
            return self._scan_unranked(tie_break)
        heap = self._heap_for(tie_break)
        gains = self._gains
        included = self._included
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            c = entry[-1]
            g = -entry[0]
            if included[c] or gains[c] != g:
                pop(heap)
                continue
            return self._index.nodes[c], g
        raise ValueError(
            "no node with positive gain: dominators lack 2-hop separation "
            "or the graph is disconnected"
        )

    def _scan_unranked(self, tie_break: str) -> tuple[N, int]:
        """Explicit ascending-id argmax for unorderable node mixes —
        the comparison structure of :meth:`LazyGainTracker.best_connector`."""
        gains = self._gains
        nodes = self._index.nodes
        degree = self._index.degree
        best_id = -1
        best_gain = 0
        for c in np.flatnonzero((gains >= 1) & ~self._included).tolist():
            g = int(gains[c])
            if g > best_gain:
                best_id, best_gain = c, g
                continue
            if g != best_gain:
                continue
            if tie_break == "min":
                wins = _smaller(nodes[c], nodes[best_id])
            elif tie_break == "max":
                wins = _smaller(nodes[best_id], nodes[c])
            else:
                ca, cb = degree(c), degree(best_id)
                wins = ca > cb or (
                    ca == cb and _smaller(nodes[c], nodes[best_id])
                )
            if wins:
                best_id = c
        if best_id < 0 or best_gain < 1:
            raise ValueError(
                "no node with positive gain: dominators lack 2-hop separation "
                "or the graph is disconnected"
            )
        return nodes[best_id], best_gain
