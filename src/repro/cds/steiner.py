"""A Steiner-style phase 2: connect dominators along shortest paths.

A third connector rule for the ablations, between WAF's tree parents
and the paper's max-gain greedy: repeatedly find the closest pair of
dominator components in ``G`` and add the internal nodes of a shortest
path between them.  For a 2-hop separated MIS every merge costs exactly
one connector, so on UDGs this behaves like a gain-1 greedy; on general
graphs (where the paper's guarantees don't apply) it still terminates
with a valid CDS, which makes it the robustness fallback used by the
quasi-UDG experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, TypeVar

from ..graphs.graph import Graph
from ..graphs.components import UnionFind
from ..mis.first_fit import first_fit_mis
from .base import CDSResult

N = TypeVar("N", bound=Hashable)

__all__ = ["steiner_connectors", "steiner_cds"]


def steiner_connectors(graph: Graph[N], dominators: Iterable[N]) -> list[N]:
    """Connect ``dominators`` by shortest inter-component paths.

    Returns the connector nodes in addition order.
    """
    doms = list(dict.fromkeys(dominators))
    included: set[N] = set(doms)
    dsu: UnionFind[N] = UnionFind(doms)
    for v in doms:
        for u in graph.neighbors(v):
            if u in included:
                dsu.union(u, v)
    connectors: list[N] = []
    while dsu.set_count > 1:
        path = _shortest_cross_component_path(graph, included, dsu)
        if path is None:
            raise ValueError("dominators cannot be connected; graph disconnected?")
        for w in path:
            if w not in included:
                included.add(w)
                connectors.append(w)
                dsu.add(w)
            for u in graph.neighbors(w):
                if u in included:
                    dsu.union(u, w)
    return connectors


def _shortest_cross_component_path(
    graph: Graph[N], included: set[N], dsu: UnionFind[N]
) -> list[N] | None:
    """Internal nodes of a shortest path between two current components.

    Multi-source BFS from one component through non-included nodes until
    another component is touched.
    """
    sets = dsu.sets()
    sources = set(sets[0])
    source_root = dsu.find(sets[0][0])
    parent: dict[N, N | None] = {v: None for v in sources}
    queue: deque[N] = deque(sources)
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in included:
                if v not in sources and dsu.find(v) != source_root:
                    # Reached another component; walk back to a source.
                    path: list[N] = []
                    walk = u
                    while walk is not None and walk not in sources:
                        path.append(walk)
                        walk = parent[walk]
                    return path
                continue
            if v not in parent:
                parent[v] = u
                queue.append(v)
    return None


def steiner_cds(graph: Graph[N], root: N | None = None) -> CDSResult:
    """Two-phased CDS with the Steiner-path connector rule."""
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="steiner", nodes=frozenset([only]), dominators=(only,), connectors=()
        )
    mis = first_fit_mis(graph, root)
    connectors = steiner_connectors(graph, mis.nodes)
    return CDSResult(
        algorithm="steiner",
        nodes=frozenset(mis.nodes) | frozenset(connectors),
        dominators=tuple(mis.nodes),
        connectors=tuple(connectors),
    )
