"""Dynamic CDS maintenance under topology churn.

The paper constructs a CDS once, but its setting — wireless *ad hoc*
networks — is defined by churn: nodes join, die, and move.  This
extension maintains a valid CDS across single-node updates with local
repairs, falling back to a full rebuild only when churn has eroded the
backbone's quality.

Repair rules (each preserves the CDS invariant, proven in the
docstrings and enforced by validation in tests):

* **join, dominated** — the new node hears a backbone node: nothing to do.
* **join, undominated** — every neighbor of the new node is a dominatee,
  hence adjacent to the backbone; *promoting* any such neighbor both
  dominates the new node and attaches to the existing backbone, keeping
  it connected.  We promote the neighbor with the most backbone
  neighbors (best-connected repair).
* **leave, non-backbone** — nothing to do.
* **leave, backbone** — re-dominate any orphaned nodes by promoting
  them, then reconnect the backbone fragments with shortest-path
  connectors (:func:`repro.cds.steiner.steiner_connectors`).

Local repairs only ever *add* nodes, so the backbone degrades over
time; :meth:`DynamicCDS.maybe_rebuild` (or ``rebuild_factor``) triggers
a fresh two-phased construction when the maintained backbone exceeds
the given multiple of a freshly built one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, TypeVar

from ..graphs.graph import Graph
from ..graphs.traversal import connected_components, is_connected
from ..graphs.properties import is_connected_dominating_set, undominated_nodes
from .base import CDSResult
from .greedy_connector import greedy_connector_cds
from .steiner import steiner_connectors

N = TypeVar("N", bound=Hashable)

__all__ = ["RepairStats", "DynamicCDS"]


@dataclass(frozen=True)
class RepairStats:
    """What one update did to the backbone.

    Attributes:
        action: ``"none"``, ``"seeded"``, ``"promoted"``,
            ``"reconnected"``, or ``"rebuilt"``.
        promoted: nodes added to the backbone by this repair.
        demoted: nodes removed from the backbone (only on rebuild/leave).
    """

    action: str
    promoted: tuple = ()
    demoted: tuple = ()


class DynamicCDS:
    """A connected dominating set maintained across topology updates.

    Args:
        graph: initial connected topology (may be empty).
        algorithm: the construction used for initial build and rebuilds;
            defaults to the paper's Section IV algorithm.
        rebuild_factor: automatically rebuild after an update leaves the
            backbone larger than ``rebuild_factor`` times a fresh
            construction.  ``None`` disables automatic rebuilds.
    """

    def __init__(
        self,
        graph: Graph[N] | None = None,
        algorithm: Callable[[Graph[N]], CDSResult] = greedy_connector_cds,
        rebuild_factor: float | None = None,
    ):
        self._graph: Graph[N] = graph.copy() if graph is not None else Graph()
        self._algorithm = algorithm
        self._rebuild_factor = rebuild_factor
        self._backbone: set[N] = set()
        self.rebuild_count = 0
        self.repair_count = 0
        if len(self._graph) > 0:
            if not is_connected(self._graph):
                raise ValueError("initial topology must be connected")
            self._backbone = set(self._algorithm(self._graph).nodes)

    # -- views ----------------------------------------------------------------

    @property
    def graph(self) -> Graph[N]:
        """The current topology (a live view; do not mutate)."""
        return self._graph

    @property
    def backbone(self) -> frozenset:
        """The maintained CDS."""
        return frozenset(self._backbone)

    @property
    def size(self) -> int:
        return len(self._backbone)

    def is_valid(self) -> bool:
        """Whether the maintained set is currently a CDS."""
        if len(self._graph) == 0:
            return len(self._backbone) == 0
        return is_connected_dominating_set(self._graph, self._backbone)

    def churn_slack(self) -> int:
        """How many nodes larger the maintained backbone is than a
        fresh construction on the current topology."""
        if len(self._graph) == 0:
            return 0
        fresh = self._algorithm(self._graph).size
        return len(self._backbone) - fresh

    # -- updates ----------------------------------------------------------------

    def add_node(self, node: N, neighbors: Iterable[N]) -> RepairStats:
        """A node joins with radio links to ``neighbors``.

        Raises:
            ValueError: if the node already exists, a neighbor is
                unknown, or the join would leave the graph disconnected
                (a non-empty graph requires at least one neighbor).
        """
        if node in self._graph:
            raise ValueError(f"node {node!r} already present")
        nbrs = list(dict.fromkeys(neighbors))
        for u in nbrs:
            if u not in self._graph:
                raise ValueError(f"unknown neighbor {u!r}")
        if len(self._graph) > 0 and not nbrs:
            raise ValueError("joining an existing network requires a neighbor")

        self._graph.add_node(node)
        for u in nbrs:
            self._graph.add_edge(node, u)

        if len(self._graph) == 1:
            self._backbone = {node}
            return RepairStats(action="seeded", promoted=(node,))

        if any(u in self._backbone for u in nbrs):
            return self._after_update(RepairStats(action="none"))

        # Every neighbor is a dominatee (the old graph was dominated), so
        # promoting the best-connected one dominates `node` and stays
        # attached to the backbone.
        best = max(
            nbrs,
            key=lambda u: sum(1 for w in self._graph.neighbors(u) if w in self._backbone),
        )
        self._backbone.add(best)
        self.repair_count += 1
        return self._after_update(RepairStats(action="promoted", promoted=(best,)))

    def remove_node(self, node: N) -> RepairStats:
        """A node leaves (or dies).

        Raises:
            ValueError: if removing it disconnects the remaining
                topology (a CDS is undefined there) or it is unknown.
        """
        if node not in self._graph:
            raise ValueError(f"unknown node {node!r}")
        candidate = self._graph.copy()
        candidate.remove_node(node)
        if len(candidate) > 0 and not is_connected(candidate):
            raise ValueError("removal would disconnect the network")
        self._graph = candidate

        if len(self._graph) == 0:
            self._backbone = set()
            return RepairStats(action="none", demoted=(node,))

        if node not in self._backbone:
            return self._after_update(RepairStats(action="none"))

        self._backbone.discard(node)
        self.repair_count += 1
        promoted: list[N] = []

        if not self._backbone:
            seed = min(self._graph.nodes())
            self._backbone.add(seed)
            promoted.append(seed)

        # Re-dominate orphans by promoting them directly: each orphan
        # gains domination of itself; connectivity is restored next.
        for orphan in undominated_nodes(self._graph, self._backbone):
            self._backbone.add(orphan)
            promoted.append(orphan)

        # Reconnect backbone fragments along shortest paths.
        fragments = connected_components(self._graph.subgraph(self._backbone))
        if len(fragments) > 1:
            connectors = steiner_connectors(self._graph, self._backbone)
            self._backbone.update(connectors)
            promoted.extend(connectors)

        action = "reconnected" if promoted else "none"
        return self._after_update(
            RepairStats(action=action, promoted=tuple(promoted), demoted=(node,))
        )

    def move_node(self, node: N, new_neighbors: Iterable[N]) -> RepairStats:
        """A node moved: replace its link set atomically.

        Models position-driven churn in a mobile network — the node
        stays, its radio neighborhood changes.  The repair re-dominates
        orphans and reconnects backbone fragments exactly as a
        backbone leave does; a moving backbone node keeps its backbone
        membership (its new links may already suffice).

        Raises:
            ValueError: if the node is unknown, a neighbor is unknown,
                or the move would disconnect the topology.
        """
        if node not in self._graph:
            raise ValueError(f"unknown node {node!r}")
        nbrs = [u for u in dict.fromkeys(new_neighbors) if u != node]
        for u in nbrs:
            if u not in self._graph:
                raise ValueError(f"unknown neighbor {u!r}")
        candidate = self._graph.copy()
        for u in candidate.neighbors(node):
            candidate.remove_edge(node, u)
        for u in nbrs:
            candidate.add_edge(node, u)
        if not is_connected(candidate):
            raise ValueError("move would disconnect the network")
        self._graph = candidate

        promoted: list[N] = []
        for orphan in undominated_nodes(self._graph, self._backbone):
            self._backbone.add(orphan)
            promoted.append(orphan)
        fragments = connected_components(self._graph.subgraph(self._backbone))
        if len(fragments) > 1:
            connectors = steiner_connectors(self._graph, self._backbone)
            self._backbone.update(connectors)
            promoted.extend(connectors)
        if promoted:
            self.repair_count += 1
        action = "reconnected" if promoted else "none"
        return self._after_update(RepairStats(action=action, promoted=tuple(promoted)))

    def rebuild(self) -> RepairStats:
        """Discard the maintained backbone and rebuild from scratch."""
        old = self._backbone
        if len(self._graph) == 0:
            self._backbone = set()
        else:
            self._backbone = set(self._algorithm(self._graph).nodes)
        self.rebuild_count += 1
        return RepairStats(
            action="rebuilt",
            promoted=tuple(self._backbone - old),
            demoted=tuple(old - self._backbone),
        )

    def maybe_rebuild(self) -> RepairStats | None:
        """Rebuild if the maintained backbone exceeds the configured
        factor of a fresh construction; otherwise do nothing."""
        if self._rebuild_factor is None or len(self._graph) == 0:
            return None
        fresh = self._algorithm(self._graph).size
        if len(self._backbone) > self._rebuild_factor * fresh:
            return self.rebuild()
        return None

    def _after_update(self, stats: RepairStats) -> RepairStats:
        auto = self.maybe_rebuild()
        return auto if auto is not None else stats
