"""The gain function ``Δ_w q(U)`` and its incremental tracker.

Section IV defines, for the phase-1 MIS ``I`` and a connector set
``U ⊆ V \\ I``, the quantity ``q(U)`` = number of connected components
of ``G[I ∪ U]``, and the *gain* of a node ``w``:

    ``Δ_w q(U) = q(U) − q(U ∪ {w})``.

For ``w ∉ I ∪ U`` the gain is one less than the number of components of
``G[I ∪ U]`` adjacent to ``w`` (every such ``w`` is adjacent to at least
one component because ``I`` is maximal, hence dominating); for
``w ∈ I ∪ U`` it is zero.

:class:`GainTracker` maintains the components with a union-find so the
greedy phase costs ``O(Σ deg)`` per selection instead of recomputing
components from scratch — the ablation benchmark
``bench_gain_incremental`` measures exactly this design choice.

When :data:`repro.obs.OBS` is enabled, the tracker reports
``gain.evaluations`` (gain computations per :meth:`GainTracker.best_connector`
scan — the per-selection work Theorem 10's analysis charges) and
``gain.dsu_unions`` (union-find merges per :meth:`GainTracker.add`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from ..graphs.components import UnionFind
from ..graphs.graph import Graph
from ..obs import OBS

N = TypeVar("N", bound=Hashable)

__all__ = ["GainTracker", "component_count", "gain_of"]


def component_count(graph: Graph[N], included: Iterable[N]) -> int:
    """``q(U)`` computed from scratch: components of ``G[included]``.

    The reference implementation the tracker is tested against.
    """
    from ..graphs.traversal import connected_components

    return len(connected_components(graph.subgraph(included)))


def gain_of(graph: Graph[N], included: set[N], w: N) -> int:
    """``Δ_w q(U)`` computed from scratch (reference implementation)."""
    if w in included:
        return 0
    before = component_count(graph, included)
    after = component_count(graph, included | {w})
    return before - after


class GainTracker:
    """Incremental components of ``G[I ∪ U]`` as connectors are added.

    Args:
        graph: the full communication topology ``G``.
        dominators: the phase-1 MIS ``I``.  Because ``I`` is
            independent, ``G[I]`` starts as ``|I|`` singleton
            components, i.e. ``q(∅) = |I|``.
    """

    def __init__(self, graph: Graph[N], dominators: Iterable[N]):
        self._graph = graph
        self._included: set[N] = set()
        self._dsu: UnionFind[N] = UnionFind()
        for d in dominators:
            if d not in graph:
                raise KeyError(f"dominator {d!r} not in graph")
            self._dsu.add(d)
            self._included.add(d)
        self._dominators = frozenset(self._included)
        if not self._dominators:
            raise ValueError("dominator set must be non-empty")
        # I is independent, so no initial unions are needed; still, be
        # permissive: if a caller passes a non-independent dominating
        # set (some baselines do), merge adjacent pairs.
        doms = list(self._dominators)
        for v in doms:
            for u in self._graph.neighbors(v):
                if u in self._included:
                    self._dsu.union(u, v)

    @property
    def included(self) -> frozenset:
        """``I ∪ U`` so far."""
        return frozenset(self._included)

    @property
    def dominators(self) -> frozenset:
        return self._dominators

    @property
    def component_count(self) -> int:
        """``q(U)`` for the current ``U``."""
        return self._dsu.set_count

    def adjacent_components(self, w: N) -> set:
        """Roots of the components of ``G[I ∪ U]`` adjacent to ``w``."""
        return {
            self._dsu.find(u)
            for u in self._graph.neighbors(w)
            if u in self._included
        }

    def gain(self, w: N) -> int:
        """``Δ_w q(U)`` for the current ``U``."""
        if w in self._included:
            return 0
        roots = self.adjacent_components(w)
        return max(0, len(roots) - 1)

    def add(self, w: N) -> int:
        """Add ``w`` to ``U`` and return the gain it realized.

        Raises:
            ValueError: if ``w`` is already included.
        """
        if w in self._included:
            raise ValueError(f"{w!r} already included")
        roots = self.adjacent_components(w)
        self._included.add(w)
        self._dsu.add(w)
        for r in roots:
            self._dsu.union(w, r)
        if OBS.enabled:
            OBS.incr("gain.dsu_unions", len(roots))
        return max(0, len(roots) - 1)

    def best_connector(self, tie_break: str = "min") -> tuple[N, int]:
        """The not-yet-included node of maximum gain.

        Args:
            tie_break: how to resolve equal gains — ``"min"`` (smallest
                node id, the library default), ``"max"`` (largest id),
                or ``"degree"`` (highest degree, then smallest id).
                The paper leaves tie-breaking unspecified; the ablation
                benchmark compares these.

        Raises ``ValueError`` when ``q(U) == 1`` (the greedy loop should
        have stopped) or when no node has positive gain while
        ``q(U) > 1`` (impossible for a 2-hop separated MIS by Lemma 9 —
        so reaching it means the inputs were invalid, e.g. a
        disconnected graph).
        """
        if tie_break not in ("min", "max", "degree"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if self.component_count <= 1:
            raise ValueError("already connected; no connector needed")
        best_node: N | None = None
        best_gain = 0
        evaluations = 0
        for w in self._graph:
            if w in self._included:
                continue
            g = self.gain(w)
            evaluations += 1
            if g > best_gain or (
                g == best_gain > 0 and self._wins_tie(w, best_node, tie_break)
            ):
                best_node, best_gain = w, g
        if OBS.enabled:
            OBS.incr("gain.evaluations", evaluations)
        if best_node is None or best_gain < 1:
            raise ValueError(
                "no node with positive gain: dominators lack 2-hop separation "
                "or the graph is disconnected"
            )
        return best_node, best_gain

    def _wins_tie(self, challenger: N, incumbent: N | None, tie_break: str) -> bool:
        if incumbent is None:
            return True
        if tie_break == "min":
            return _smaller(challenger, incumbent)
        if tie_break == "max":
            return _smaller(incumbent, challenger)
        ca, cb = self._graph.degree(challenger), self._graph.degree(incumbent)
        if ca != cb:
            return ca > cb
        return _smaller(challenger, incumbent)


def _smaller(a, b) -> bool:
    """Deterministic tie-break helper tolerant of unorderable mixes."""
    if b is None:
        return True
    try:
        return a < b
    except TypeError:
        return repr(a) < repr(b)
