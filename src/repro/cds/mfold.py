"""Fault-tolerant CDS variants: ``(1, m)``- and ``(2, m)``-CDS.

The paper's backbone dies with its first node: one failed dominator
orphans its neighborhood, one failed connector splits the spine.  The
standard fixes are redundancy in both roles:

* a ``(1, m)``-CDS is a *connected m-fold dominating set* — every node
  outside the backbone has ``m`` distinct backbone neighbors (Zhang et
  al., arXiv:1510.05886 give the greedy with a provable ratio);
* a ``(2, m)``-CDS additionally keeps the backbone itself 2-connected,
  so deleting any single backbone node leaves it a connected dominating
  set (the (2,2) augmentation of Aneja et al., arXiv:1705.09643).

Both are built here on the existing substrate:

1. **Phase 1a** — the BFS first-fit MIS (identical to the paper's
   phase 1), which 1-dominates and seeds the component structure.
2. **Phase 1b** — the m-coverage greedy: repeatedly add the node
   closing the most remaining coverage *deficit* (its own ``m − cov``
   demand if still outside, plus one per deficient neighbor).  The
   frontier/dirty-cache pattern of
   :class:`~repro.cds.lazy_gain.LazyGainTracker` keeps re-scores to
   the 2-hop neighborhood of each addition; ``mfold.deficit_evaluations``
   counts cache misses only.
3. **Phase 2** — the Section IV greedy connectors over the full
   dominator set (every component of ``G[D]`` contains an MIS node, so
   Lemma 9 still supplies a positive-gain connector), reusing
   :func:`~repro.cds.greedy_connector.greedy_connectors` and therefore
   every kernel's gain tracker unchanged.
4. **Augmentation** (``(2, m)`` only) — while the induced backbone has
   a cut vertex, patch it with the shortest *ear*: a minimum-hop path
   through non-backbone nodes joining two of the components its removal
   leaves.  Each ear strictly grows the backbone, so the loop
   terminates; it needs the underlying graph to be 2-connected (a
   ``(2, m)``-CDS cannot exist otherwise), which is checked up front
   via :func:`repro.graphs.biconnectivity.is_k_connected`.

Survivability: with ``m >= 2`` the output of
:func:`mfold_2conn_cds` stays a connected dominating set after deleting
any single backbone node
(:func:`repro.graphs.properties.survives_node_removal`; property-tested
in ``tests/properties/test_variant_invariants.py``) — non-members keep
``m − 1 >= 1`` dominators, the backbone stays connected because no
member is a cut vertex of it, and the dead member is itself dominated
by a backbone neighbor.

Selections are bit-identical across kernels: phases 1b and the
augmentation run on the interned CSR rows every kernel view carries,
and phase 2 runs on the kernel's own tracker, which is already pinned
bit-identical by the equivalence suites.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence, TypeVar

from ..graphs.backend import adjacency_rows, build_kernel
from ..graphs.biconnectivity import articulation_ids, is_k_connected
from ..graphs.bitset import BitsetGraph
from ..graphs.graph import Graph
from ..mis.first_fit import _smallest_node, first_fit_mis_nodes
from ..obs import OBS, trace
from .base import CDSResult
from .gain import _smaller
from .greedy_connector import greedy_connectors

N = TypeVar("N", bound=Hashable)

__all__ = [
    "augment_biconnected",
    "mfold_2conn_cds",
    "mfold_dominators",
    "mfold_greedy_cds",
]


def _wins_tie(index, challenger: int, incumbent: int, tie_break: str) -> bool:
    """The shared gain tie-break on interned ids (mirrors the trackers)."""
    if incumbent < 0:
        return True
    nodes = index.nodes
    if tie_break == "min":
        return _smaller(nodes[challenger], nodes[incumbent])
    if tie_break == "max":
        return _smaller(nodes[incumbent], nodes[challenger])
    ca = index.degree(challenger)
    cb = index.degree(incumbent)
    if ca != cb:
        return ca > cb
    return _smaller(nodes[challenger], nodes[incumbent])


def mfold_dominators(
    index, seed_dominators: Iterable[N], m: int, tie_break: str = "min"
) -> list[N]:
    """Extend a dominating set to an m-fold dominating set, greedily.

    Args:
        index: any kernel view of the topology.
        seed_dominators: the phase-1a set (typically the first-fit
            MIS); kept in full, extension nodes are appended after it.
        m: the coverage multiplicity (``m >= 1``).
        tie_break: deficit-gain tie resolution, same modes as the
            connector trackers ("min" / "max" / "degree").

    Returns:
        The seed nodes (original order) followed by the extension nodes
        in selection order.

    The gain of a candidate ``w`` is the total coverage deficit its
    addition erases: ``max(0, m − cov(w))`` for itself plus one per
    deficient non-member neighbor.  A deficient node is its own
    positive-gain candidate, so the loop always progresses and
    feasibility never needs a special case (nodes with ``deg < m`` end
    up inside, as they must).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    if tie_break not in ("min", "max", "degree"):
        raise ValueError(f"unknown tie_break {tie_break!r}")
    rows = adjacency_rows(index)
    n = len(rows)
    member = bytearray(n)
    seed = list(seed_dominators)
    for d in seed:
        member[index.id_of(d)] = 1
    cov = [0] * n
    for v in range(n):
        if member[v]:
            for u in rows[v]:
                cov[u] += 1
    deficient = {
        v for v in range(n) if not member[v] and cov[v] < m
    }
    if not deficient:
        return seed
    # Candidates: every non-member whose addition erases some deficit —
    # the deficient nodes themselves plus their non-member neighbors.
    candidates: set[int] = set()
    for v in deficient:
        candidates.add(v)
        for u in rows[v]:
            if not member[u]:
                candidates.add(u)
    gain_cache: dict[int, int] = {}
    added: list[N] = []
    evaluations = 0
    while deficient:
        best_id, best_gain = -1, 0
        for c in sorted(candidates):
            g = gain_cache.get(c)
            if g is None:
                g = max(0, m - cov[c]) + sum(
                    1 for u in rows[c] if not member[u] and cov[u] < m
                )
                gain_cache[c] = g
                evaluations += 1
            if g > best_gain or (
                g == best_gain > 0 and _wins_tie(index, c, best_id, tie_break)
            ):
                best_id, best_gain = c, g
        assert best_gain >= 1, "a deficient node is always its own candidate"
        w = best_id
        member[w] = 1
        deficient.discard(w)
        candidates.discard(w)
        gain_cache.pop(w, None)
        # Coverage changes only on N(w); gains depend on a node's own
        # deficit and its neighbors', so the dirty set is N(w) plus the
        # neighbors of any node whose deficit just moved — the 2-hop
        # ball around w (the LazyGainTracker invalidation pattern).
        for u in rows[w]:
            cov[u] += 1
            gain_cache.pop(u, None)
            if not member[u] and cov[u] >= m:
                deficient.discard(u)
            if cov[u] <= m:  # deficit moved (m−cov crossed downward)
                for x in rows[u]:
                    gain_cache.pop(x, None)
        for v in list(candidates):
            # Cheap prune: candidates that can no longer gain drop out.
            if gain_cache.get(v) == 0:
                candidates.discard(v)
        added.append(index.node_at(w))
    if OBS.enabled:
        OBS.incr("mfold.deficit_evaluations", evaluations)
        OBS.incr("mfold.coverage_added", len(added))
    return seed + added


def mfold_greedy_cds(
    graph: Graph[N],
    m: int = 2,
    root: N | None = None,
    tie_break: str = "min",
    kernel: str = "auto",
) -> CDSResult:
    """The greedy ``(1, m)``-CDS: connected m-fold dominating set.

    Phase 1a/1b/2 as described in the module docstring.  ``m=1``
    degenerates to the paper's Section IV algorithm (same node set; the
    coverage extension is a no-op because the MIS already 1-dominates).

    Args:
        graph: a connected topology.
        m: coverage multiplicity (``m >= 1``; default 2, the smallest
            fault-tolerant setting).
        root: phase-1 BFS root; defaults to the smallest node.
        tie_break: selection tie resolution for phases 1b and 2.
        kernel: kernel choice, as for the other kernelized solvers.

    Returns:
        :class:`CDSResult` with ``dominators`` = the m-fold dominating
        set (MIS first, coverage extensions after) and ``connectors`` =
        the phase-2 connectors; ``meta`` records ``m``, the gain
        trajectory, and the phase-1b size.

    Raises:
        ValueError: empty/disconnected graph, ``m < 1``, bad kernel.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="mfold-greedy",
            nodes=frozenset([only]),
            dominators=(only,),
            connectors=(),
            meta={"m": m, "coverage_added": 0},
        )
    index = build_kernel(graph, kernel)
    if isinstance(index, BitsetGraph):
        index.neighbor_masks
    if root is None:
        root = _smallest_node(graph)
    with trace("mfold.phase1"):
        mis_nodes = first_fit_mis_nodes(graph, root, index=index)
        dominators = mfold_dominators(index, mis_nodes, m, tie_break)
    with trace("mfold.phase2"):
        connectors, gains, q_values = greedy_connectors(
            graph, dominators, tie_break, index
        )
    return CDSResult(
        algorithm="mfold-greedy",
        nodes=frozenset(dominators) | frozenset(connectors),
        dominators=tuple(dominators),
        connectors=tuple(connectors),
        meta={
            "m": m,
            "root": root,
            "coverage_added": len(dominators) - len(mis_nodes),
            "gain_history": tuple(gains),
            "q_history": tuple(q_values),
        },
    )


def _induced_rows(rows: Sequence, member: bytearray, skip: int = -1):
    """Adjacency rows of the induced subgraph on ``member`` (minus
    ``skip``), relabeled to compact local ids.

    Returns ``(local_rows, locals_)`` where ``locals_[i]`` is the dense
    global id of local node ``i``, in ascending global-id order.
    """
    locals_ = [
        v for v in range(len(rows)) if member[v] and v != skip
    ]
    local_of = {v: i for i, v in enumerate(locals_)}
    local_rows = [
        [local_of[u] for u in rows[v] if member[u] and u != skip]
        for v in locals_
    ]
    return local_rows, locals_


def augment_biconnected(
    graph: Graph[N], backbone: Iterable[N], index=None
) -> tuple[list[N], int]:
    """Patch every cut vertex of the induced backbone via shortest ears.

    While ``G[S]`` has a cut vertex ``v``, find the minimum-hop path in
    ``G − v`` from the first component of ``G[S] − v`` to any other,
    routed through non-backbone nodes, and absorb its interior into
    ``S``.  Each ear adds at least one new node (two components of
    ``G[S] − v`` directly adjacent would be one component), so at most
    ``n − |S|`` iterations run.

    Args:
        graph: the topology; must be 2-connected when it has >= 3 nodes
            (otherwise some cut vertex of the *graph* is unpatchable).
        backbone: a connected dominating node set to harden.
        index: optional prebuilt kernel view of ``graph``.

    Returns:
        ``(ear_nodes, cut_vertices_repaired)`` — the added nodes in
        selection order and the number of patch iterations.

    Raises:
        ValueError: if ``graph`` has >= 3 nodes but is not 2-connected.
    """
    if index is None:
        index = build_kernel(graph, "indexed")
    rows = adjacency_rows(index)
    n = len(rows)
    if n >= 3 and not is_k_connected(index, 2):
        raise ValueError(
            "graph is not 2-connected; no (2,m)-CDS exists "
            "(a cut vertex of the graph itself cannot be patched)"
        )
    member = bytearray(n)
    for b in backbone:
        member[index.id_of(b)] = 1
    ears: list[N] = []
    repairs = 0
    while True:
        local_rows, locals_ = _induced_rows(rows, member)
        cuts = articulation_ids(local_rows)
        if not cuts:
            break
        v = locals_[cuts[0]]  # smallest global id → deterministic
        # Components of G[S] − v, over compact local ids.
        comp_rows, comp_locals = _induced_rows(rows, member, skip=v)
        comp_of = _component_labels(comp_rows)
        # Multi-source BFS in G − v from component 0, expanding through
        # non-backbone nodes, stopping at the first other-component
        # backbone node.  Adjacency order ties keep this deterministic.
        parent = {g: -1 for i, g in enumerate(comp_locals) if comp_of[i] == 0}
        queue = deque(sorted(parent))
        target = -1
        comp_of_global = {
            g: comp_of[i] for i, g in enumerate(comp_locals)
        }
        while queue and target < 0:
            x = queue.popleft()
            for u in rows[x]:
                if u == v or u in parent:
                    continue
                if member[u]:
                    if comp_of_global[u] != 0:
                        parent[u] = x
                        target = u
                        break
                    continue  # same-component backbone: not a source, skip
                parent[u] = x
                queue.append(u)
        assert target >= 0, "2-connected graph must reconnect the split"
        node = parent[target]
        while node >= 0 and not member[node]:
            member[node] = 1
            ears.append(index.node_at(node))
            node = parent[node]
        repairs += 1
    if OBS.enabled:
        OBS.incr("mfold.cut_vertices_repaired", repairs)
        OBS.incr("mfold.ear_nodes_added", len(ears))
    return ears, repairs


def _component_labels(rows: Sequence) -> list[int]:
    """Connected-component label per node, labels in first-seen order."""
    n = len(rows)
    label = [-1] * n
    current = 0
    for s in range(n):
        if label[s] != -1:
            continue
        label[s] = current
        frontier = [s]
        while frontier:
            nxt = []
            for v in frontier:
                for u in rows[v]:
                    if label[u] == -1:
                        label[u] = current
                        nxt.append(u)
            frontier = nxt
        current += 1
    return label


def mfold_2conn_cds(
    graph: Graph[N],
    m: int = 2,
    root: N | None = None,
    tie_break: str = "min",
    kernel: str = "auto",
) -> CDSResult:
    """The ``(2, m)``-CDS: a ``(1, m)``-CDS hardened to survive any
    single backbone death.

    Runs :func:`mfold_greedy_cds` and then
    :func:`augment_biconnected`.  With the default ``m=2`` the result
    passes :func:`repro.graphs.properties.survives_node_removal`:
    deleting any one backbone node leaves a connected dominating set.
    (``m=1`` is accepted — the backbone is still 2-connected — but
    singly-dominated neighbors of the dead node lose coverage, so only
    the backbone itself is guaranteed to survive.)

    Raises:
        ValueError: empty/disconnected input, ``m < 1``, or a graph
            with >= 3 nodes that is not 2-connected (no ``(2, m)``-CDS
            exists there).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1 (got {m})")
    if len(graph) == 1:
        only = next(iter(graph))
        return CDSResult(
            algorithm="mfold-2conn",
            nodes=frozenset([only]),
            dominators=(only,),
            connectors=(),
            meta={"m": m, "cut_vertices_repaired": 0, "augmentation_cost": 0},
        )
    index = build_kernel(graph, kernel)
    base = mfold_greedy_cds(graph, m, root, tie_break, kernel)
    with trace("mfold.augment"):
        ears, repairs = augment_biconnected(graph, base.nodes, index)
    meta = dict(base.meta)
    meta.update(cut_vertices_repaired=repairs, augmentation_cost=len(ears))
    return CDSResult(
        algorithm="mfold-2conn",
        nodes=base.nodes | frozenset(ears),
        dominators=base.dominators,
        connectors=base.connectors + tuple(ears),
        meta=meta,
    )
