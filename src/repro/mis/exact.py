"""Exact maximum independent set — the independence number ``alpha(G)``.

Corollary 7 relates ``alpha(G)`` to ``gamma_c(G)``; to *verify* it
empirically we need the true independence number of sampled UDGs, not a
heuristic MIS.  This is NP-hard in general, so the solver is a plain
branch-and-bound intended for the experiment sizes (tens of nodes):

* branch on a highest-degree vertex of the residual graph (take it and
  delete ``N[v]``, or discard it);
* greedy-clique-cover upper bound for pruning;
* isolated and degree-1 vertices are taken eagerly (both are safe
  reductions for maximum independent set).
"""

from __future__ import annotations

from typing import Hashable, TypeVar

from ..graphs.graph import Graph

N = TypeVar("N", bound=Hashable)

__all__ = ["maximum_independent_set", "independence_number"]


def _reductions(graph: Graph[N], chosen: list[N]) -> None:
    """Apply safe reductions in place: take isolated and degree-1 nodes.

    For a degree-1 node ``v`` with neighbor ``u``, some maximum
    independent set contains ``v`` (swap ``u`` out for ``v``).
    """
    changed = True
    while changed:
        changed = False
        for v in graph.nodes():
            if v not in graph:  # removed earlier in this pass
                continue
            deg = graph.degree(v)
            if deg == 0:
                chosen.append(v)
                graph.remove_node(v)
                changed = True
            elif deg == 1:
                u = graph.neighbors(v)[0]
                chosen.append(v)
                graph.remove_node(u)
                graph.remove_node(v)
                changed = True


def _clique_cover_bound(graph: Graph[N]) -> int:
    """Number of cliques in a greedy clique cover — an upper bound on
    the independence number of the residual graph."""
    uncovered = set(graph.nodes())
    cliques = 0
    while uncovered:
        v = next(iter(uncovered))
        clique = {v}
        candidates = graph.neighbor_set(v) & uncovered
        while candidates:
            u = next(iter(candidates))
            clique.add(u)
            candidates &= graph.neighbor_set(u)
        uncovered -= clique
        cliques += 1
    return cliques


def maximum_independent_set(graph: Graph[N]) -> list[N]:
    """A maximum independent set, by branch and bound.

    Exact; exponential worst case.  Comfortable for the sizes the
    Corollary 7 experiments use (n up to ~60 on sparse UDGs).
    """
    best: list[N] = []

    def solve(g: Graph[N], chosen: list[N]) -> None:
        nonlocal best
        _reductions(g, chosen)
        if len(g) == 0:
            if len(chosen) > len(best):
                best = list(chosen)
            return
        if len(chosen) + _clique_cover_bound(g) <= len(best):
            return
        v = max(g.nodes(), key=g.degree)
        # Branch 1: take v.
        g1 = g.copy()
        for u in g1.neighbors(v):
            g1.remove_node(u)
        g1.remove_node(v)
        solve(g1, chosen + [v])
        # Branch 2: discard v.
        g2 = g.copy()
        g2.remove_node(v)
        solve(g2, chosen)

    solve(graph.copy(), [])
    return best


def independence_number(graph: Graph[N]) -> int:
    """``alpha(G)``: the size of a maximum independent set."""
    return len(maximum_independent_set(graph))
