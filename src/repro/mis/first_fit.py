"""Phase 1 of the two-phased framework: BFS first-fit MIS.

Both the WAF algorithm [10] (Section III) and the paper's new algorithm
(Section IV) select the dominating set the same way: fix an arbitrary
rooted spanning tree ``T`` of ``G`` and pick a maximal independent set
in the *first-fit manner in the breadth-first-search ordering* of ``T``.

The MIS produced this way has the 2-hop separation property: every
selected node (after the first) is exactly two hops from some earlier
selected node.  That property is what Lemma 9 leans on — while the
dominators induce more than one component, some single node is adjacent
to at least two of those components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, TypeVar

from ..graphs.graph import Graph
from ..graphs.indexed import IndexedGraph
from ..graphs.traversal import BFSTree, bfs_tree, dfs_tree
from ..obs import OBS, trace

N = TypeVar("N", bound=Hashable)

__all__ = ["FirstFitMIS", "first_fit_mis", "first_fit_mis_in_order"]


@dataclass(frozen=True)
class FirstFitMIS(Sequence):
    """The MIS selected by phase 1, with its provenance.

    Attributes:
        nodes: selected independent nodes, in selection order.
        tree: the rooted BFS tree whose ordering drove the selection
            (also the tree the WAF connector phase takes parents from).
    """

    nodes: tuple
    tree: BFSTree

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    def __contains__(self, node) -> bool:
        return node in set(self.nodes)

    def as_set(self) -> set:
        return set(self.nodes)


def first_fit_mis_in_order(graph: Graph[N], order: Sequence[N]) -> list[N]:
    """First-fit MIS over an explicit node ordering.

    Scans ``order`` and keeps each node none of whose neighbors was
    already kept.  ``order`` must cover every node of the graph for the
    result to be maximal (the callers guarantee this).
    """
    chosen: list[N] = []
    chosen_set: set[N] = set()
    for v in order:
        if any(u in chosen_set for u in graph.neighbors(v)):
            continue
        chosen.append(v)
        chosen_set.add(v)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order))
        OBS.incr("mis.selected", len(chosen))
    return chosen


def _first_fit_mis_indexed(index: IndexedGraph[N], root: N) -> FirstFitMIS:
    """The BFS + first-fit pipeline on the CSR kernel.

    Bit-identical to the dict-based path (the kernel preserves
    iteration and adjacency order); the scan itself runs on flat
    integer arrays with a byte-mask membership test.
    """
    nodes = index.nodes
    order_ids, parent_ids, depth_ids = index.bfs(index.id_of(root))
    if len(order_ids) != len(index):
        raise ValueError("graph must be connected for the two-phased framework")
    indptr, indices = index.indptr, index.indices
    chosen_mask = bytearray(len(index))
    chosen_ids: list[int] = []
    append = chosen_ids.append
    for v in order_ids:
        for u in indices[indptr[v] : indptr[v + 1]]:
            if chosen_mask[u]:
                break
        else:
            chosen_mask[v] = 1
            append(v)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order_ids))
        OBS.incr("mis.selected", len(chosen_ids))
    tree = BFSTree(
        root=root,
        order=tuple(nodes[v] for v in order_ids),
        parent={nodes[v]: nodes[parent_ids[v]] for v in order_ids if parent_ids[v] >= 0},
        depth={nodes[v]: depth_ids[v] for v in order_ids},
    )
    return FirstFitMIS(nodes=tuple(nodes[v] for v in chosen_ids), tree=tree)


def first_fit_mis(
    graph: Graph[N],
    root: N | None = None,
    tree_kind: str = "bfs",
    *,
    index: IndexedGraph[N] | None = None,
) -> FirstFitMIS:
    """Tree-order first-fit MIS of a connected graph.

    ``root`` defaults to the smallest node (a deterministic "leader").
    The root is always selected (it is first in its own traversal
    order), so the returned MIS contains the leader — matching [10],
    where the leader initiates both phases.

    ``tree_kind`` selects the spanning tree whose visit order drives
    the first fit: ``"bfs"`` (the choice of [10]'s distributed
    implementation and the default everywhere) or ``"dfs"`` (Section
    III only requires an *arbitrary* rooted spanning tree; the ablation
    benchmarks compare the two).  Either order guarantees that every
    non-root node's parent is visited earlier, which is what the WAF
    connector correctness argument needs.

    ``index`` optionally supplies a prebuilt
    :class:`~repro.graphs.indexed.IndexedGraph` view of ``graph``; the
    BFS and first-fit scan then run on its flat arrays (bit-identical
    selection, cheaper per step).  Callers that run several phases on
    one topology build the view once and thread it through — building
    it costs as much as one BFS, so a one-shot caller gains nothing.
    The view must describe ``graph``; it is ignored for ``"dfs"``.

    Raises:
        ValueError: if the graph is empty or not connected (the
            two-phased framework is defined on connected topologies),
            or on an unknown ``tree_kind``.
    """
    if len(graph) == 0:
        raise ValueError("first_fit_mis requires a non-empty graph")
    if tree_kind not in ("bfs", "dfs"):
        raise ValueError(f"unknown tree_kind {tree_kind!r}")
    if root is None:
        root = min(graph.nodes())
    with trace("mis.first_fit"):
        if index is not None and tree_kind == "bfs":
            return _first_fit_mis_indexed(index, root)
        builder = bfs_tree if tree_kind == "bfs" else dfs_tree
        tree = builder(graph, root)
        if len(tree.order) != len(graph):
            raise ValueError("graph must be connected for the two-phased framework")
        nodes = first_fit_mis_in_order(graph, tree.order)
    return FirstFitMIS(nodes=tuple(nodes), tree=tree)
