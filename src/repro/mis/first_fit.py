"""Phase 1 of the two-phased framework: BFS first-fit MIS.

Both the WAF algorithm [10] (Section III) and the paper's new algorithm
(Section IV) select the dominating set the same way: fix an arbitrary
rooted spanning tree ``T`` of ``G`` and pick a maximal independent set
in the *first-fit manner in the breadth-first-search ordering* of ``T``.

The MIS produced this way has the 2-hop separation property: every
selected node (after the first) is exactly two hops from some earlier
selected node.  That property is what Lemma 9 leans on — while the
dominators induce more than one component, some single node is adjacent
to at least two of those components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, TypeVar

import numpy as np

from ..graphs.array import ArrayGraph
from ..graphs.bitset import BitsetGraph, DominationTracker, value_sort_keys
from ..graphs.graph import Graph
from ..graphs.indexed import IndexedGraph
from ..graphs.traversal import BFSTree, bfs_tree, dfs_tree
from ..obs import OBS, trace

N = TypeVar("N", bound=Hashable)

__all__ = [
    "FirstFitMIS",
    "first_fit_mis",
    "first_fit_mis_in_order",
    "first_fit_mis_nodes",
]


@dataclass(frozen=True)
class FirstFitMIS(Sequence):
    """The MIS selected by phase 1, with its provenance.

    Attributes:
        nodes: selected independent nodes, in selection order.
        tree: the rooted BFS tree whose ordering drove the selection
            (also the tree the WAF connector phase takes parents from).
    """

    nodes: tuple
    tree: BFSTree

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    def __contains__(self, node) -> bool:
        return node in set(self.nodes)

    def as_set(self) -> set:
        return set(self.nodes)


def first_fit_mis_in_order(graph: Graph[N], order: Sequence[N]) -> list[N]:
    """First-fit MIS over an explicit node ordering.

    Scans ``order`` and keeps each node none of whose neighbors was
    already kept.  ``order`` must cover every node of the graph for the
    result to be maximal (the callers guarantee this).
    """
    chosen: list[N] = []
    chosen_set: set[N] = set()
    for v in order:
        if any(u in chosen_set for u in graph.neighbors(v)):
            continue
        chosen.append(v)
        chosen_set.add(v)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order))
        OBS.incr("mis.selected", len(chosen))
    return chosen


def _scan_indexed(index: IndexedGraph[N], order_ids: list[int]) -> list[int]:
    """First-fit selection over ``order_ids`` on the CSR kernel.

    Bit-identical to the dict-based path (the kernel preserves
    iteration and adjacency order); the scan itself runs on flat
    integer arrays with a byte-mask membership test.
    """
    indptr, indices = index.indptr, index.indices
    chosen_mask = bytearray(len(index))
    chosen_ids: list[int] = []
    append = chosen_ids.append
    for v in order_ids:
        for u in indices[indptr[v] : indptr[v + 1]]:
            if chosen_mask[u]:
                break
        else:
            chosen_mask[v] = 1
            append(v)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order_ids))
        OBS.incr("mis.selected", len(chosen_ids))
    return chosen_ids


def _scan_bitset(bitset: BitsetGraph[N], order_ids: list[int]) -> list[int]:
    """First-fit selection over ``order_ids`` on the bitset kernel.

    The scan runs on a :class:`DominationTracker`: a node is selectable
    exactly when it is still uncovered — no chosen node has it in its
    closed neighborhood — so the per-node test is one byte read and
    each selection covers ``N[v]`` with one word-parallel ``AND NOT``.
    Selects the same nodes as the CSR scan: "uncovered" and "no chosen
    neighbor" coincide because coverage is via closed neighborhoods of
    chosen nodes and a covered node is never chosen.
    """
    tracker = DominationTracker(bitset)
    covered = tracker.covered_flags
    cover = tracker.cover
    chosen_ids: list[int] = []
    append = chosen_ids.append
    for v in order_ids:
        if not covered[v]:
            append(v)
            cover(v)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order_ids))
        OBS.incr("mis.selected", len(chosen_ids))
    return chosen_ids


def _scan_array(array: ArrayGraph[N], order_ids: list[int]) -> list[int]:
    """First-fit selection over ``order_ids`` on the array kernel.

    Same covered-flag formulation as the bitset scan — a node is
    selectable exactly when no earlier selection covered it, which
    coincides with "no chosen neighbor" because coverage is via closed
    neighborhoods and a covered node is never chosen — with each
    selection's ``N[v]`` cover applied as one array slice.  The
    per-node test stays a bytearray read (cheaper than boxing a numpy
    scalar per scanned node); the covers scatter through a numpy view
    of the same buffer, one vector call per selection.
    """
    indptr, indices = array.indptr, array.indices
    covered = bytearray(len(array))
    covered_np = np.frombuffer(covered, dtype=np.uint8)
    chosen_ids: list[int] = []
    append = chosen_ids.append
    writes = 0
    for v in order_ids:
        if not covered[v]:
            append(v)
            covered[v] = 1
            nbrs = indices[indptr[v] : indptr[v + 1]]
            writes += nbrs.size
            covered_np[nbrs] = 1
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order_ids))
        OBS.incr("mis.selected", len(chosen_ids))
        OBS.incr("array.cover_writes", writes)
    return chosen_ids


def _bfs_scan_bitset(bitset: BitsetGraph[N], root: int) -> tuple[list[int], int]:
    """Fused BFS + first-fit selection on the bitset kernel.

    One pass instead of BFS-then-scan: when a node is dequeued, every
    node earlier in BFS order has already been dequeued and had its
    selection applied, so deciding "still uncovered?" at dequeue time
    selects exactly the nodes the two-pass pipeline would.  Returns
    ``(chosen_ids, visited_count)``; the caller checks connectivity.
    """
    csr = bitset.indexed
    indptr, indices = csr.indptr, csr.indices
    masks = bitset.neighbor_masks
    n = len(csr)
    uncovered = bitset.full_mask
    covered = bytearray(n)
    seen = bytearray(n)
    seen[root] = 1
    order = [root]
    append = order.append
    chosen_ids: list[int] = []
    choose = chosen_ids.append
    head = 0
    while head < len(order):
        v = order[head]
        head += 1
        if not covered[v]:
            choose(v)
            # Inline DominationTracker.cover: flag exactly the newly
            # covered ids (each node is drained once over the run).
            newly = uncovered & (masks[v] | (1 << v))
            uncovered &= ~newly
            while newly:
                lsb = newly & -newly
                covered[lsb.bit_length() - 1] = 1
                newly ^= lsb
        for u in indices[indptr[v] : indptr[v + 1]]:
            if not seen[u]:
                seen[u] = 1
                append(u)
    if OBS.enabled:
        OBS.incr("mis.nodes_scanned", len(order))
        OBS.incr("mis.selected", len(chosen_ids))
        OBS.incr("bitset.word_ops", len(chosen_ids) * bitset.words * 3)
    return chosen_ids, len(order)


def _first_fit_mis_kernel(
    index: IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N], root: N
) -> FirstFitMIS:
    """The BFS + first-fit pipeline on any kernel, tree included.

    The BFS runs on the CSR arrays for the first two kernels (a
    frontier-OR bitset BFS would visit neighbors in ascending-id order,
    not adjacency insertion order, breaking bit-identity) and on the
    array kernel's vectorized level-synchronous BFS — which preserves
    that order exactly — for the third.
    """
    if isinstance(index, ArrayGraph):
        csr = index.indexed
        walker = index
    elif isinstance(index, BitsetGraph):
        csr = index.indexed
        walker = csr
    else:
        csr = walker = index
    nodes = csr.nodes
    order_ids, parent_ids, depth_ids = walker.bfs(csr.id_of(root))
    if len(order_ids) != len(csr):
        raise ValueError("graph must be connected for the two-phased framework")
    if isinstance(index, BitsetGraph):
        chosen_ids = _scan_bitset(index, order_ids)
    elif isinstance(index, ArrayGraph):
        chosen_ids = _scan_array(index, order_ids)
    else:
        chosen_ids = _scan_indexed(csr, order_ids)
    tree = BFSTree(
        root=root,
        order=tuple(nodes[v] for v in order_ids),
        parent={nodes[v]: nodes[parent_ids[v]] for v in order_ids if parent_ids[v] >= 0},
        depth={nodes[v]: depth_ids[v] for v in order_ids},
    )
    return FirstFitMIS(nodes=tuple(nodes[v] for v in chosen_ids), tree=tree)


def first_fit_mis_nodes(
    graph: Graph[N],
    root: N | None = None,
    *,
    index: IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N] | None = None,
) -> tuple:
    """The phase-1 dominator tuple alone — no spanning-tree assembly.

    Selects exactly :func:`first_fit_mis`'s BFS-order MIS (same root
    defaulting, same counters) but skips materializing the
    :class:`~repro.graphs.traversal.BFSTree` parent/depth maps, which
    solvers that never read tree parents — the Section IV greedy —
    otherwise pay for at every node of the graph.

    Raises:
        ValueError: if the graph is empty or not connected.
    """
    if len(graph) == 0:
        raise ValueError("first_fit_mis requires a non-empty graph")
    if root is None:
        root = _smallest_node(graph)
    with trace("mis.first_fit"):
        if index is None:
            tree = bfs_tree(graph, root)
            if len(tree.order) != len(graph):
                raise ValueError(
                    "graph must be connected for the two-phased framework"
                )
            return tuple(first_fit_mis_in_order(graph, tree.order))
        if isinstance(index, BitsetGraph):
            csr = index.indexed
            chosen_ids, visited = _bfs_scan_bitset(index, csr.id_of(root))
        elif isinstance(index, ArrayGraph):
            csr = index.indexed
            order_ids = index.bfs_order(csr.id_of(root))
            visited = len(order_ids)
            chosen_ids = _scan_array(index, order_ids)
        else:
            csr = index
            order_ids = csr.bfs_order(csr.id_of(root))
            visited = len(order_ids)
            chosen_ids = _scan_indexed(csr, order_ids)
        if visited != len(csr):
            raise ValueError(
                "graph must be connected for the two-phased framework"
            )
        nodes = csr.nodes
        return tuple(nodes[v] for v in chosen_ids)


def _smallest_node(graph: Graph[N]) -> N:
    """The deterministic default root: the smallest node by value."""
    nodes = graph.nodes()
    keys = value_sort_keys(nodes)
    if keys is nodes:
        return min(nodes)
    return nodes[min(range(len(nodes)), key=keys.__getitem__)]


def first_fit_mis(
    graph: Graph[N],
    root: N | None = None,
    tree_kind: str = "bfs",
    *,
    index: IndexedGraph[N] | BitsetGraph[N] | ArrayGraph[N] | None = None,
) -> FirstFitMIS:
    """Tree-order first-fit MIS of a connected graph.

    ``root`` defaults to the smallest node (a deterministic "leader").
    The root is always selected (it is first in its own traversal
    order), so the returned MIS contains the leader — matching [10],
    where the leader initiates both phases.

    ``tree_kind`` selects the spanning tree whose visit order drives
    the first fit: ``"bfs"`` (the choice of [10]'s distributed
    implementation and the default everywhere) or ``"dfs"`` (Section
    III only requires an *arbitrary* rooted spanning tree; the ablation
    benchmarks compare the two).  Either order guarantees that every
    non-root node's parent is visited earlier, which is what the WAF
    connector correctness argument needs.

    ``index`` optionally supplies a prebuilt
    :class:`~repro.graphs.indexed.IndexedGraph`,
    :class:`~repro.graphs.bitset.BitsetGraph` or
    :class:`~repro.graphs.array.ArrayGraph` view of ``graph``; the BFS
    and first-fit scan then run on its flat arrays, neighborhood masks,
    or numpy buffers (bit-identical selection, cheaper per step).  Callers that
    run several phases on one topology build the view once and thread
    it through — building it costs as much as one BFS, so a one-shot
    caller gains nothing.  The view must describe ``graph``; it is
    ignored for ``"dfs"``.

    Raises:
        ValueError: if the graph is empty or not connected (the
            two-phased framework is defined on connected topologies),
            or on an unknown ``tree_kind``.
    """
    if len(graph) == 0:
        raise ValueError("first_fit_mis requires a non-empty graph")
    if tree_kind not in ("bfs", "dfs"):
        raise ValueError(f"unknown tree_kind {tree_kind!r}")
    if root is None:
        root = _smallest_node(graph)
    with trace("mis.first_fit"):
        if index is not None and tree_kind == "bfs":
            return _first_fit_mis_kernel(index, root)
        builder = bfs_tree if tree_kind == "bfs" else dfs_tree
        tree = builder(graph, root)
        if len(tree.order) != len(graph):
            raise ValueError("graph must be connected for the two-phased framework")
        nodes = first_fit_mis_in_order(graph, tree.order)
    return FirstFitMIS(nodes=tuple(nodes), tree=tree)
