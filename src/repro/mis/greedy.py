"""Alternative MIS selection orders.

The ablation experiments compare phase-1 choices: the BFS first-fit
order of [10] against max-degree greedy (each pick dominates as many
new nodes as possible), lexicographic first-fit, and random orders.
The approximation guarantees of Sections III-IV only need *some* MIS
with 2-hop separation; these variants quantify how much the order
matters in practice.
"""

from __future__ import annotations

import random
from typing import Hashable, TypeVar

from ..graphs.graph import Graph
from .first_fit import first_fit_mis_in_order

N = TypeVar("N", bound=Hashable)

__all__ = ["max_degree_mis", "lexicographic_mis", "random_order_mis", "min_degree_mis"]


def lexicographic_mis(graph: Graph[N]) -> list[N]:
    """First-fit MIS over the sorted node order."""
    return first_fit_mis_in_order(graph, sorted(graph.nodes()))


def random_order_mis(graph: Graph[N], seed: int | random.Random = 0) -> list[N]:
    """First-fit MIS over a shuffled node order."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    order = list(graph.nodes())
    rng.shuffle(order)
    return first_fit_mis_in_order(graph, order)


def _greedy_by_degree(graph: Graph[N], prefer_max: bool) -> list[N]:
    """Greedy MIS repeatedly taking an extreme-degree node of the
    residual graph and deleting its closed neighborhood."""
    remaining = graph.copy()
    chosen: list[N] = []
    while len(remaining) > 0:
        if prefer_max:
            pick = max(remaining.nodes(), key=lambda v: (remaining.degree(v),))
        else:
            pick = min(remaining.nodes(), key=lambda v: (remaining.degree(v),))
        chosen.append(pick)
        for u in remaining.neighbors(pick):
            remaining.remove_node(u)
        remaining.remove_node(pick)
    return chosen


def max_degree_mis(graph: Graph[N]) -> list[N]:
    """Greedy MIS preferring high-degree nodes.

    Each pick dominates many nodes, so the resulting dominating set
    tends to be *small* — the Chvátal-flavored heuristic.
    """
    return _greedy_by_degree(graph, prefer_max=True)


def min_degree_mis(graph: Graph[N]) -> list[N]:
    """Greedy MIS preferring low-degree nodes.

    The classical heuristic for *large* independent sets — useful as an
    adversarial phase-1 choice when probing the packing bounds, since
    Theorem 6 caps |I| regardless of how the MIS was found.
    """
    return _greedy_by_degree(graph, prefer_max=False)
