"""Maximal / maximum independent set algorithms.

Phase 1 of the two-phased CDS framework (BFS first-fit MIS of [10]),
alternative greedy orders for the ablations, and an exact maximum
independent set solver used to measure ``alpha(G)`` in the Corollary 7
experiments.
"""

from .first_fit import FirstFitMIS, first_fit_mis, first_fit_mis_in_order
from .greedy import lexicographic_mis, max_degree_mis, min_degree_mis, random_order_mis
from .exact import independence_number, maximum_independent_set

__all__ = [
    "FirstFitMIS",
    "first_fit_mis",
    "first_fit_mis_in_order",
    "lexicographic_mis",
    "max_degree_mis",
    "min_degree_mis",
    "random_order_mis",
    "independence_number",
    "maximum_independent_set",
]
