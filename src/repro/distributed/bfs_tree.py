"""Distributed BFS spanning-tree construction.

The leader floods an ``explore`` wave carrying the hop level; each node
adopts the first sender it hears as its tree parent (ties within a
round broken toward the smallest sender id, making the tree — and
therefore the MIS ranks built on it — deterministic).  ``O(n)``
transmissions (each node broadcasts once), ``O(D)`` rounds.
"""

from __future__ import annotations

from typing import Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator

__all__ = ["build_bfs_tree", "BFSNode", "DistributedTree"]


class BFSNode(NodeProcess):
    """Explore-wave state machine."""

    def __init__(self, node_id: Hashable, root: Hashable):
        super().__init__(node_id)
        self.root = root
        self.parent: Hashable | None = None
        self.level: int | None = 0 if node_id == root else None
        self._offers: list[tuple[int, Hashable]] = []

    def on_start(self, ctx: Context) -> None:
        if self.node_id == self.root:
            ctx.broadcast("explore", level=0)

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "explore" and self.level is None:
            self._offers.append((message.payload["level"], message.sender))

    def on_round(self, ctx: Context) -> None:
        if self.level is None and self._offers:
            level, parent = min(self._offers)
            self.level = level + 1
            self.parent = parent
            ctx.broadcast("explore", level=self.level)
        self._offers.clear()


class DistributedTree:
    """The outcome of the tree phase: parent and level per node."""

    def __init__(self, root: Hashable, parent: dict, level: dict):
        self.root = root
        self.parent = parent
        self.level = level

    def rank(self, node: Hashable) -> tuple[int, Hashable]:
        """The (level, id) rank [10] orders the first-fit MIS by."""
        return (self.level[node], node)

    def children(self) -> dict:
        kids: dict[Hashable, list] = {n: [] for n in self.level}
        for node, par in self.parent.items():
            kids[par].append(node)
        return kids


def build_bfs_tree(
    graph: Graph,
    root: Hashable,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[DistributedTree, SimMetrics]:
    """Run the explore wave from ``root``.

    Raises:
        AssertionError: if some node was never reached (disconnected).
    """
    sim = make_simulator(
        graph, lambda v: BFSNode(v, root), engine=engine, topology=topology
    )
    metrics = sim.run()
    parent: dict = {}
    level: dict = {}
    for proc in sim.processes.values():
        assert isinstance(proc, BFSNode)
        if proc.level is None:
            raise AssertionError(f"node {proc.node_id!r} unreachable from root")
        level[proc.node_id] = proc.level
        if proc.parent is not None:
            parent[proc.node_id] = proc.parent
    return DistributedTree(root, parent, level), metrics
