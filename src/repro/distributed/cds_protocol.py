"""Distributed phase-2 protocols and the end-to-end CDS pipelines.

``distributed_waf_cds`` runs the full [10] pipeline — leader election,
BFS tree, rank-based MIS, then the tree-parent connector protocol of
Section III — entirely as message-passing state machines, and reports
the summed message/round metrics.

``distributed_greedy_cds`` runs the same first three phases and then
the Section IV max-gain connector selection as a leader-coordinated
iterative protocol built from three reusable primitives (component
label flooding over the backbone, a convergecast of the maximum gain up
the BFS tree, and a winner-announcement flood).  Each iteration's
messages are counted faithfully; the iteration loop itself is driven by
the test harness the way a real implementation's leader would drive it.

Both pipelines run on the batched engine by default (``engine=``
selects; see :mod:`repro.distributed.engine`) and intern the topology
**once**: a single :class:`~repro.distributed.simulator.RadioTopology`
is threaded through every phase — and, for the greedy, every
iteration — so the O(V+E) kernel build and receiver-tuple gather are
paid once per pipeline instead of once per simulator.  The MIS phase's
node-priority order is pluggable end to end (``priority=``, see
:func:`repro.distributed.mis_protocol.make_priority`).
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..graphs.graph import Graph
from ..cds.base import CDSResult
from ..obs import OBS, trace
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator
from .leader import elect_leader
from .bfs_tree import DistributedTree, build_bfs_tree
from .mis_protocol import elect_mis

__all__ = [
    "distributed_waf_cds",
    "distributed_greedy_cds",
    "flood_min_labels",
    "convergecast_max",
    "flood_value",
]


# ---------------------------------------------------------------------------
# WAF connector phase as a single state machine.
# ---------------------------------------------------------------------------


class _WAFConnectorNode(NodeProcess):
    """State machine for Section III's connector selection.

    Prior knowledge (legitimately retained from earlier phases): the
    node's tree parent and level, whether it is a dominator, and which
    neighbors are dominators (heard during the MIS color broadcasts).
    """

    def __init__(
        self,
        node_id: Hashable,
        tree: DistributedTree,
        dominators: set,
        dominator_count: int,
    ):
        super().__init__(node_id)
        self.tree = tree
        self.is_root = node_id == tree.root
        self.is_dominator = node_id in dominators
        self.dominator_count = dominator_count
        self.is_connector = False
        self.s: Hashable | None = None
        self._replies: dict[Hashable, int] = {}
        self._flooded = False

    def on_start(self, ctx: Context) -> None:
        if self.is_root:
            ctx.broadcast("count-query")

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "count-query":
            ctx.send(message.sender, "count-reply", count=self.dominator_count)
        elif message.kind == "count-reply" and self.is_root:
            self._replies[message.sender] = message.payload["count"]
            if len(self._replies) == len(ctx.neighbors):
                best = max(self._replies.values())
                s = min(v for v, c in self._replies.items() if c == best)
                self.s = s
                self._flooded = True
                ctx.broadcast("s-chosen", s=s)
                self._after_s(ctx)
        elif message.kind == "s-chosen":
            if self.s is None:
                self.s = message.payload["s"]
                if not self._flooded:
                    self._flooded = True
                    ctx.broadcast("s-chosen", s=self.s)
                self._after_s(ctx)
        elif message.kind == "join":
            # A dominator child asked this node to become a connector.
            self.is_connector = True

    def _after_s(self, ctx: Context) -> None:
        if self.node_id == self.s:
            self.is_connector = True
        if (
            self.is_dominator
            and not self.is_root
            and not ctx.is_neighbor(self.s)
        ):
            ctx.send(self.tree.parent[self.node_id], "join")


def _waf_connector_phase(
    graph: Graph,
    tree: DistributedTree,
    dominators: list,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[list, SimMetrics]:
    topo = topology if topology is not None else RadioTopology(graph)
    dom_set = set(dominators)
    dom_count = {
        v: sum(1 for u in nbrs if u in dom_set)
        for v, nbrs in topo.receivers.items()
    }
    sim = make_simulator(
        graph,
        lambda v: _WAFConnectorNode(v, tree, dom_set, dom_count[v]),
        engine=engine,
        topology=topo,
    )
    metrics = sim.run()
    connectors = [
        p.node_id
        for p in sim.processes.values()
        if isinstance(p, _WAFConnectorNode) and p.is_connector
    ]
    return connectors, metrics


def distributed_waf_cds(
    graph: Graph,
    *,
    priority: "str | Callable[[Hashable], object] | None" = None,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[CDSResult, SimMetrics]:
    """The full distributed WAF pipeline.

    Returns the CDS and the merged metrics of all four phases.  One
    :class:`RadioTopology` is shared by every phase; ``engine`` and
    ``priority`` select the round engine and the MIS rank order.

    Raises:
        ValueError / AssertionError: on empty or disconnected input.
    """
    if len(graph) == 1:
        only = next(iter(graph))
        return (
            CDSResult(
                algorithm="waf-distributed",
                nodes=frozenset([only]),
                dominators=(only,),
                connectors=(),
            ),
            SimMetrics(),
        )
    topo = topology if topology is not None else RadioTopology(graph)
    with trace("distributed.waf"):
        leader, m1 = elect_leader(graph, engine=engine, topology=topo)
        tree, m2 = build_bfs_tree(graph, leader, engine=engine, topology=topo)
        dominators, m3 = elect_mis(
            graph, tree, priority=priority, engine=engine, topology=topo
        )
        connectors, m4 = _waf_connector_phase(
            graph, tree, dominators, engine=engine, topology=topo
        )
    metrics = m1.merge(m2).merge(m3).merge(m4)
    result = CDSResult(
        algorithm="waf-distributed",
        nodes=frozenset(dominators) | frozenset(connectors),
        dominators=tuple(dominators),
        connectors=tuple(connectors),
        meta={"leader": leader},
    )
    return result, metrics


# ---------------------------------------------------------------------------
# Primitives for the leader-coordinated greedy connector phase.
# ---------------------------------------------------------------------------


class _LabelNode(NodeProcess):
    """Flood-min labels within the backbone; every improvement is a
    local broadcast heard by backbone and candidate nodes alike."""

    def __init__(self, node_id: Hashable, in_backbone: bool):
        super().__init__(node_id)
        self.in_backbone = in_backbone
        self.label: Hashable | None = node_id if in_backbone else None
        self.heard: dict[Hashable, Hashable] = {}
        self._dirty = in_backbone

    def on_start(self, ctx: Context) -> None:
        if self._dirty:
            ctx.broadcast("label", label=self.label)
            self._dirty = False

    def on_messages(self, ctx: Context, messages: list) -> None:
        # One pass over the inbox: remember the last label heard per
        # neighbor and keep the minimum improvement, if any.
        heard = self.heard
        if self.in_backbone:
            label = self.label
            for message in messages:
                if message.kind != "label":
                    continue
                incoming = message.payload["label"]
                heard[message.sender] = incoming
                if incoming < label:
                    label = incoming
            if label != self.label:
                self.label = label
                self._dirty = True
        else:
            for message in messages:
                if message.kind == "label":
                    heard[message.sender] = message.payload["label"]

    def on_message(self, ctx: Context, message: Message) -> None:
        self.on_messages(ctx, [message])

    def on_round(self, ctx: Context) -> None:
        if self._dirty:
            ctx.broadcast("label", label=self.label)
            self._dirty = False


def flood_min_labels(
    graph: Graph,
    backbone: set,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[dict, dict, SimMetrics]:
    """Label the components of ``G[backbone]`` by min-id flooding.

    Labels only propagate along backbone-backbone edges, but every
    broadcast is heard by all radio neighbors, so non-backbone nodes
    finish knowing the final label of each backbone neighbor.

    Returns ``(labels, heard, metrics)``: final label per backbone
    node, and for every node the last label heard from each neighbor.
    """
    sim = make_simulator(
        graph,
        lambda v: _LabelNode(v, v in backbone),
        engine=engine,
        topology=topology,
    )
    metrics = sim.run()
    labels: dict = {}
    heard: dict = {}
    for p in sim.processes.values():
        assert isinstance(p, _LabelNode)
        if p.in_backbone:
            labels[p.node_id] = p.label
        heard[p.node_id] = dict(p.heard)
    return labels, heard, metrics


class _ConvergecastNode(NodeProcess):
    """Max-convergecast up the BFS tree: leaves report, parents merge."""

    def __init__(
        self,
        node_id: Hashable,
        tree: DistributedTree,
        children: dict,
        value: tuple,
    ):
        super().__init__(node_id)
        self.tree = tree
        self.children = children.get(node_id, [])
        self.best = value
        self._pending = set(self.children)
        self._sent = False

    def _maybe_report(self, ctx: Context) -> None:
        if self._sent or self._pending:
            return
        if self.node_id != self.tree.root:
            ctx.send(self.tree.parent[self.node_id], "report", best=self.best)
        self._sent = True

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind != "report":
            return
        self._pending.discard(message.sender)
        incoming = tuple(message.payload["best"])
        if incoming > self.best:
            self.best = incoming
        self._maybe_report(ctx)

    def on_start(self, ctx: Context) -> None:
        self._maybe_report(ctx)


def convergecast_max(
    graph: Graph,
    tree: DistributedTree,
    values: dict,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[tuple, SimMetrics]:
    """Aggregate the maximum of ``values`` up to the root.

    ``values[v]`` must be a comparable tuple; returns the global max as
    seen by the root, with ``n - 1`` transmissions in ``O(depth)`` rounds.
    """
    children = tree.children()
    sim = make_simulator(
        graph,
        lambda v: _ConvergecastNode(v, tree, children, tuple(values[v])),
        engine=engine,
        topology=topology,
    )
    metrics = sim.run()
    root_proc = sim.processes[tree.root]
    assert isinstance(root_proc, _ConvergecastNode)
    return root_proc.best, metrics


class _FloodNode(NodeProcess):
    """One-shot network-wide flood of a value from an origin."""

    def __init__(self, node_id: Hashable, origin: Hashable, value):
        super().__init__(node_id)
        self.origin = origin
        self.value = value if node_id == origin else None

    def on_start(self, ctx: Context) -> None:
        if self.node_id == self.origin:
            ctx.broadcast("flood", value=self.value)

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "flood" and self.value is None:
            self.value = message.payload["value"]
            ctx.broadcast("flood", value=self.value)


def flood_value(
    graph: Graph,
    origin: Hashable,
    value,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> SimMetrics:
    """Flood ``value`` from ``origin`` to everyone: n transmissions."""
    sim = make_simulator(
        graph,
        lambda v: _FloodNode(v, origin, value),
        engine=engine,
        topology=topology,
    )
    return sim.run()


def distributed_greedy_cds(
    graph: Graph,
    *,
    priority: "str | Callable[[Hashable], object] | None" = None,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[CDSResult, SimMetrics]:
    """The Section IV algorithm as a leader-coordinated protocol.

    Per iteration: flood component labels over the current backbone,
    convergecast each candidate's gain (distinct adjacent labels minus
    one) to the root, and flood the winner, which joins the backbone.
    Repeats until one component remains.  The metrics sum every phase
    and iteration; the shared topology makes each iteration's three
    sub-simulations reuse one interned kernel.
    """
    if len(graph) == 1:
        only = next(iter(graph))
        return (
            CDSResult(
                algorithm="greedy-distributed",
                nodes=frozenset([only]),
                dominators=(only,),
                connectors=(),
            ),
            SimMetrics(),
        )
    topo = topology if topology is not None else RadioTopology(graph)
    with trace("distributed.greedy.setup"):
        leader, m1 = elect_leader(graph, engine=engine, topology=topo)
        tree, m2 = build_bfs_tree(graph, leader, engine=engine, topology=topo)
        dominators, m3 = elect_mis(
            graph, tree, priority=priority, engine=engine, topology=topo
        )
    metrics = m1.merge(m2).merge(m3)

    receivers = topo.receivers
    backbone: set = set(dominators)
    connectors: list = []
    iterations = 0
    while True:
        iterations += 1
        labels, heard, m_label = flood_min_labels(
            graph, backbone, engine=engine, topology=topo
        )
        metrics = metrics.merge(m_label)
        if len(set(labels.values())) <= 1:
            break
        # Each candidate's gain from the labels it heard.
        values: dict = {}
        for v, nbrs in receivers.items():
            if v in backbone:
                values[v] = (0, v)
            else:
                seen = {labels[u] for u in nbrs if u in backbone}
                values[v] = (max(0, len(seen) - 1), v)
        (best_gain, winner), m_conv = convergecast_max(
            graph, tree, values, engine=engine, topology=topo
        )
        metrics = metrics.merge(m_conv)
        if best_gain < 1:
            raise AssertionError("no positive gain but backbone disconnected")
        metrics = metrics.merge(
            flood_value(graph, tree.root, winner, engine=engine, topology=topo)
        )
        backbone.add(winner)
        connectors.append(winner)

    if OBS.enabled:
        OBS.incr("distributed.greedy.iterations", iterations)
    result = CDSResult(
        algorithm="greedy-distributed",
        nodes=frozenset(backbone),
        dominators=tuple(dominators),
        connectors=tuple(connectors),
        meta={"leader": leader},
    )
    return result, metrics
