"""CLI-facing adapters: run the distributed pipelines as CDS solvers.

The solver registry (``repro.cli``) calls every algorithm as
``solver(graph) -> CDSResult`` on a Point-labeled UDG.  The distributed
pipelines want compact, orderable ids (every protocol breaks ties by
node id), so these adapters relabel to the same sorted-coordinate
integer ids :func:`repro.experiments.instances.int_labeled` uses, run
the message-passing pipeline on the batched engine, and relabel the
result back — ``CDSResult.is_valid`` and the downstream analyses see
the caller's own node labels.  The simulation's complexity accounting
lands in ``result.meta`` (``sim_rounds``, ``sim_transmissions``,
``sim_receptions``), which is how sweeps surface the paper's
message/time-complexity columns next to the CDS sizes.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..cds.base import CDSResult
from ..graphs.graph import Graph
from .cds_protocol import distributed_greedy_cds, distributed_waf_cds

__all__ = [
    "DISTRIBUTED_SOLVERS",
    "waf_dist_cds",
    "waf_dist_degree_cds",
    "greedy_dist_cds",
    "greedy_dist_degree_cds",
]


def _int_relabeled(graph: Graph) -> tuple[Graph, dict[int, Hashable]]:
    """Relabel to sorted-order integer ids; return the graph and the
    id → original-label map (the exact relabeling of ``int_labeled``,
    inlined to keep this module below the experiments layer)."""
    ids = {v: i for i, v in enumerate(sorted(graph.nodes()))}
    relabeled: Graph[int] = Graph()
    for v in graph.nodes():
        relabeled.add_node(ids[v])
    for u, v in graph.edges():
        relabeled.add_edge(ids[u], ids[v])
    return relabeled, {i: v for v, i in ids.items()}


def _run_pipeline(
    graph: Graph,
    pipeline: Callable,
    algorithm: str,
    priority: "str | None",
    engine: str,
) -> CDSResult:
    relabeled, back = _int_relabeled(graph)
    result, metrics = pipeline(relabeled, priority=priority, engine=engine)
    meta = dict(result.meta)
    if "leader" in meta:
        meta["leader"] = back[meta["leader"]]
    meta.update(
        sim_rounds=metrics.rounds,
        sim_transmissions=metrics.transmissions,
        sim_receptions=metrics.receptions,
        engine=engine,
        priority=priority or "bfs-rank",
    )
    return CDSResult(
        algorithm=algorithm,
        nodes=frozenset(back[v] for v in result.nodes),
        dominators=tuple(back[v] for v in result.dominators),
        connectors=tuple(back[v] for v in result.connectors),
        meta=meta,
    )


def waf_dist_cds(graph: Graph, *, engine: str = "batched") -> CDSResult:
    """The full distributed WAF pipeline as a registry solver."""
    return _run_pipeline(graph, distributed_waf_cds, "waf-dist", None, engine)


def waf_dist_degree_cds(graph: Graph, *, engine: str = "batched") -> CDSResult:
    """Distributed WAF under the ``"degree"`` MIS priority."""
    return _run_pipeline(
        graph, distributed_waf_cds, "waf-dist-degree", "degree", engine
    )


def greedy_dist_cds(graph: Graph, *, engine: str = "batched") -> CDSResult:
    """The leader-coordinated greedy pipeline as a registry solver."""
    return _run_pipeline(graph, distributed_greedy_cds, "greedy-dist", None, engine)


def greedy_dist_degree_cds(graph: Graph, *, engine: str = "batched") -> CDSResult:
    """Distributed greedy under the ``"degree"`` MIS priority."""
    return _run_pipeline(
        graph, distributed_greedy_cds, "greedy-dist-degree", "degree", engine
    )


#: Registry entries merged into the CLI solver table: the protocol
#: variants ``sweep --algorithm`` can now run cell-parallel.
DISTRIBUTED_SOLVERS: dict[str, Callable[[Graph], CDSResult]] = {
    "waf-dist": waf_dist_cds,
    "waf-dist-degree": waf_dist_degree_cds,
    "greedy-dist": greedy_dist_cds,
    "greedy-dist-degree": greedy_dist_degree_cds,
}
