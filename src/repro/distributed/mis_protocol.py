"""Distributed rank-based MIS election — phase 1 of [10].

Every node carries the rank ``(level, id)`` from the BFS tree.  The
election cascades:

* a node all of whose lower-ranked neighbors have announced DOMINATEE
  becomes a DOMINATOR (the lowest-ranked node overall starts the
  cascade — it has no lower-ranked neighbor);
* a node hearing any neighbor announce DOMINATOR becomes a DOMINATEE.

Each node broadcasts its rank once and its final color once, so the
protocol uses exactly ``2n`` transmissions; time is ``O(n)`` rounds in
the worst case (a chain).  The result is precisely the first-fit MIS in
rank order — a maximal independent set containing the leader and having
the 2-hop separation property both of the paper's phase-2 rules need.
"""

from __future__ import annotations

from typing import Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, SimMetrics, Simulator
from .bfs_tree import DistributedTree

__all__ = ["elect_mis", "MISNode"]

UNDECIDED = "undecided"
DOMINATOR = "dominator"
DOMINATEE = "dominatee"


class MISNode(NodeProcess):
    """Rank-cascade state machine."""

    def __init__(self, node_id: Hashable, tree: DistributedTree):
        super().__init__(node_id)
        self.rank = tree.rank(node_id)
        self.state = UNDECIDED
        self._neighbor_rank: dict[Hashable, tuple] = {}
        self._lower_dominatee: set[Hashable] = set()
        self._announced = False

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast("rank", rank=self.rank)

    def _lower_ranked(self) -> list[Hashable]:
        return [v for v, r in self._neighbor_rank.items() if r < self.rank]

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "rank":
            self._neighbor_rank[message.sender] = tuple(message.payload["rank"])
        elif message.kind == "color":
            color = message.payload["color"]
            if color == DOMINATOR and self.state == UNDECIDED:
                self.state = DOMINATEE
            elif color == DOMINATEE:
                self._lower_dominatee.add(message.sender)

    def on_round(self, ctx: Context) -> None:
        # Ranks arrive in round 1; before that no decision is possible.
        if ctx.round < 1:
            return
        if self.state == UNDECIDED and len(self._neighbor_rank) == len(ctx.neighbors):
            lower = self._lower_ranked()
            if all(v in self._lower_dominatee for v in lower):
                self.state = DOMINATOR
        if self.state != UNDECIDED and not self._announced:
            ctx.broadcast("color", color=self.state)
            self._announced = True


def elect_mis(
    graph: Graph, tree: DistributedTree
) -> tuple[list[Hashable], SimMetrics]:
    """Run the MIS election over an already-built BFS tree.

    Returns the dominators sorted by rank (the selection order) and the
    run metrics.

    Raises:
        AssertionError: if any node finishes undecided (cannot happen on
            a connected topology — it would indicate a simulator bug).
    """
    sim = Simulator(graph, lambda v: MISNode(v, tree))
    metrics = sim.run()
    dominators = []
    for proc in sim.processes.values():
        assert isinstance(proc, MISNode)
        if proc.state == UNDECIDED:
            raise AssertionError(f"node {proc.node_id!r} finished undecided")
        if proc.state == DOMINATOR:
            dominators.append(proc.node_id)
    dominators.sort(key=tree.rank)
    return dominators, metrics
