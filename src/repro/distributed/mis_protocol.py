"""Distributed rank-based MIS election — phase 1 of [10].

Every node carries a totally-ordered *rank*; the election cascades:

* a node all of whose lower-ranked neighbors have announced DOMINATEE
  becomes a DOMINATOR (the lowest-ranked node overall starts the
  cascade — it has no lower-ranked neighbor);
* a node hearing any neighbor announce DOMINATOR becomes a DOMINATEE.

Each node broadcasts its rank once and its final color once, so the
protocol uses exactly ``2n`` transmissions; time is ``O(n)`` rounds in
the worst case (a chain).  The result is precisely the first-fit MIS in
rank order.

The rank itself is pluggable (:func:`make_priority`): the paper's
``(level, id)`` BFS rank is the default, and any *level-major* order —
same BFS level first, then any tiebreak, e.g. the ``"degree"`` priority
``(level, -degree, id)`` — preserves both properties phase 2 needs:
adjacent BFS levels guarantee every dominator is within two hops of a
lower-ranked one, and first-fit in a level-major order keeps the MIS
independent with the leader in it.  Custom callables are tie-broken by
the BFS rank so the order stays total; callers picking a
non-level-major order get a valid MIS but forfeit the paper's phase-2
size bounds (see ``docs/architecture.md``).
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator
from .bfs_tree import DistributedTree

__all__ = ["PRIORITIES", "elect_mis", "make_priority", "MISNode"]

UNDECIDED = "undecided"
DOMINATOR = "dominator"
DOMINATEE = "dominatee"

#: Named node-priority orders for the MIS election.  Both are
#: level-major, so the paper's phase-2 analyses keep holding.
PRIORITIES = ("bfs-rank", "degree")


def make_priority(
    priority: "str | Callable[[Hashable], object] | None",
    tree: DistributedTree,
    topology: RadioTopology,
) -> dict[Hashable, tuple]:
    """Resolve a priority spec to the per-node rank map.

    ``priority`` is ``None`` / ``"bfs-rank"`` (the paper's
    ``(level, id)`` order), ``"degree"`` (``(level, -degree, id)`` —
    denser nodes win within a BFS level, a common energy/coverage
    heuristic), or a callable mapping a node id to any comparable value
    (swept learned priorities, energy levels, ...).  Callable values
    are suffixed with the BFS rank, which makes the order total even
    when the callable ties — uniqueness is what keeps adjacent nodes
    from electing each other simultaneously.

    Raises:
        ValueError: on an unknown priority name.
    """
    if priority is None or priority == "bfs-rank":
        return {v: tree.rank(v) for v in topology.receivers}
    if priority == "degree":
        return {
            v: (tree.level[v], -len(topology.receivers[v]), v)
            for v in topology.receivers
        }
    if callable(priority):
        return {v: (priority(v), *tree.rank(v)) for v in topology.receivers}
    raise ValueError(
        f"unknown priority {priority!r}; expected one of {PRIORITIES} or a callable"
    )


class MISNode(NodeProcess):
    """Rank-cascade state machine.

    Decision state is two integers maintained incrementally as messages
    arrive — ranks still missing, and lower-ranked neighbors that have
    not yet announced DOMINATEE — so the ``on_round`` check is O(1)
    instead of rescanning the whole neighbor-rank table every round
    (the rescan made the cascade O(Δ²) per node on the old engine).
    """

    __slots__ = (
        "rank",
        "state",
        "_neighbor_rank",
        "_ranks_missing",
        "_lower_pending",
        "_announced",
    )

    def __init__(self, node_id: Hashable, rank: tuple, degree: int):
        super().__init__(node_id)
        self.rank = rank
        self.state = UNDECIDED
        self._neighbor_rank: dict[Hashable, tuple] = {}
        self._ranks_missing = degree
        self._lower_pending = 0
        self._announced = False

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast("rank", rank=self.rank)

    def on_messages(self, ctx: Context, messages: list) -> None:
        # Primary handler: one pass over the round's inbox.  Ranks
        # always precede colors from the same sender (rank lands in
        # round 1, the earliest color in round 2), so the incremental
        # counters never see a color from an unknown-rank neighbor.
        rank = self.rank
        neighbor_rank = self._neighbor_rank
        for message in messages:
            kind = message.kind
            if kind == "rank":
                incoming = tuple(message.payload["rank"])
                neighbor_rank[message.sender] = incoming
                self._ranks_missing -= 1
                if incoming < rank:
                    self._lower_pending += 1
            elif kind == "color":
                color = message.payload["color"]
                if color == DOMINATOR:
                    if self.state == UNDECIDED:
                        self.state = DOMINATEE
                elif neighbor_rank[message.sender] < rank:
                    self._lower_pending -= 1

    def on_message(self, ctx: Context, message: Message) -> None:
        self.on_messages(ctx, [message])

    def on_round(self, ctx: Context) -> None:
        if self.state == UNDECIDED:
            if self._ranks_missing or self._lower_pending:
                return
            self.state = DOMINATOR
        if not self._announced:
            ctx.broadcast("color", color=self.state)
            self._announced = True


def elect_mis(
    graph: Graph,
    tree: DistributedTree,
    *,
    priority: "str | Callable[[Hashable], object] | None" = None,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[list[Hashable], SimMetrics]:
    """Run the MIS election over an already-built BFS tree.

    Returns the dominators sorted by their rank (the selection order —
    ``(level, id)`` under the default priority) and the run metrics.

    Args:
        graph: the topology.
        tree: the BFS tree whose levels anchor the rank.
        priority: node-priority order — see :func:`make_priority`.
        engine: round engine, ``"batched"`` (default) or ``"reference"``.
        topology: optional shared :class:`RadioTopology` of ``graph``.

    Raises:
        AssertionError: if any node finishes undecided (cannot happen on
            a connected topology — it would indicate a simulator bug).
    """
    topo = topology if topology is not None else RadioTopology(graph)
    rank_of = make_priority(priority, tree, topo)
    receivers = topo.receivers
    sim = make_simulator(
        graph,
        lambda v: MISNode(v, rank_of[v], len(receivers[v])),
        engine=engine,
        topology=topo,
    )
    metrics = sim.run()
    dominators = []
    for proc in sim.processes.values():
        assert isinstance(proc, MISNode)
        if proc.state == UNDECIDED:
            raise AssertionError(f"node {proc.node_id!r} finished undecided")
        if proc.state == DOMINATOR:
            dominators.append(proc.node_id)
    dominators.sort(key=rank_of.__getitem__)
    return dominators, metrics
