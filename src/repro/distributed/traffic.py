"""Store-and-forward unicast traffic over a backbone.

The routing module computes paths combinatorially; this protocol
actually *transports* packets on the radio simulator, with the
constraint that a node transmits at most one packet per round
(half-duplex store-and-forward).  Packets queue at relays, so the
measured delivery times include the contention a small backbone
concentrates — the cost side of the CDS tradeoff that the pure
path-length view hides.

Usage::

    stats = run_traffic(graph, backbone, flows)
    stats.delivered, stats.mean_delay, stats.max_queue
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..graphs.graph import Graph
from ..routing.backbone import BackboneRouter
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator

__all__ = ["TrafficStats", "run_traffic"]


@dataclass
class TrafficStats:
    """Outcome of one traffic run."""

    delivered: int
    total: int
    mean_delay: float
    max_delay: int
    max_queue: int
    metrics: SimMetrics = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def all_delivered(self) -> bool:
        return self.delivered == self.total


class _RelayNode(NodeProcess):
    """Forward queued packets along precomputed source routes,
    one transmission per round."""

    def __init__(self, node_id: Hashable, initial: list[tuple[int, list]]):
        super().__init__(node_id)
        # Each queue entry: (packet_id, remaining_path) where
        # remaining_path[0] is the next hop.
        self.queue: deque[tuple[int, list]] = deque(initial)
        self.delivered: dict[int, int] = {}
        self.max_queue = len(self.queue)

    def on_start(self, ctx: Context) -> None:
        self._pump(ctx)

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind != "packet":
            return
        packet_id = message.payload["packet_id"]
        remaining = list(message.payload["remaining"])
        if not remaining:
            self.delivered[packet_id] = ctx.round
            return
        self.queue.append((packet_id, remaining))
        self.max_queue = max(self.max_queue, len(self.queue))

    def on_round(self, ctx: Context) -> None:
        self._pump(ctx)

    def _pump(self, ctx: Context) -> None:
        if not self.queue:
            return
        packet_id, remaining = self.queue.popleft()
        next_hop = remaining[0]
        ctx.send(next_hop, "packet", packet_id=packet_id, remaining=remaining[1:])
        if self.queue:
            ctx.stay_active()


def run_traffic(
    graph: Graph,
    backbone: Iterable[Hashable],
    flows: Sequence[tuple[Hashable, Hashable]],
    max_rounds: int = 10_000,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> TrafficStats:
    """Transport one packet per flow over the backbone.

    Args:
        graph: the topology.
        backbone: a CDS of ``graph`` (routes are backbone-interior).
        flows: (source, target) pairs; one packet each, all injected at
            round 0.

    Returns:
        Delivery statistics plus the raw simulator metrics.

    Raises:
        ValueError: if the backbone is not a CDS (router refuses it).
    """
    router = BackboneRouter(graph, backbone)
    initial: dict[Hashable, list[tuple[int, list]]] = {v: [] for v in graph.nodes()}
    expected_receiver: dict[int, Hashable] = {}
    for packet_id, (source, target) in enumerate(flows):
        path = router.route(source, target)
        if len(path) == 1:
            continue  # self-flow: delivered trivially, excluded below
        initial[source].append((packet_id, path[1:]))
        expected_receiver[packet_id] = target

    sim = make_simulator(
        graph, lambda v: _RelayNode(v, initial[v]), engine=engine, topology=topology
    )
    metrics = sim.run(max_rounds=max_rounds)

    delays: list[int] = []
    max_queue = 0
    for proc in sim.processes.values():
        assert isinstance(proc, _RelayNode)
        max_queue = max(max_queue, proc.max_queue)
        for packet_id, arrival in proc.delivered.items():
            assert expected_receiver[packet_id] == proc.node_id
            delays.append(arrival)
    total = len(expected_receiver)
    return TrafficStats(
        delivered=len(delays),
        total=total,
        mean_delay=(sum(delays) / len(delays)) if delays else 0.0,
        max_delay=max(delays, default=0),
        max_queue=max_queue,
        metrics=metrics,
    )
