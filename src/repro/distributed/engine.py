"""The batched round engine: the simulator's hot loop at 10⁴–10⁵ nodes.

The reference :class:`~repro.distributed.simulator.Simulator` is the
semantic baseline but pays three per-round taxes that dominate at
scale: a fresh ``Context`` and a Python call per *delivery*, a
``dict``/``list`` copy per *transmission*, and an ``on_round`` tick on
all ``n`` nodes every round even when almost all of them are idle —
the rank cascade of [10] keeps only a moving frontier busy, so at
``n = 10⁴`` upwards of 99% of those ticks are no-ops.

:class:`BatchedSimulator` removes all three while keeping
:class:`~repro.distributed.simulator.SimMetrics` and protocol outputs
bit-identical (pinned by the randomized lockstep suite in
``tests/distributed/test_engine_equivalence.py``):

* **Per-node inboxes.**  Each round's in-flight messages are grouped
  by receiver in one pass and handed over through the batch callback
  :meth:`~repro.distributed.simulator.NodeProcess.on_messages` — one
  Python call per *receiving node* instead of one per delivery, with
  each inbox in exactly the reference engine's arrival order.
* **Active set.**  Only nodes that received a message, sent one of the
  messages delivered this round, or requested ``stay_active()`` last
  round get their ``on_round`` tick, iterated in dense-id order (the
  reference engine's dict order restricted to the active nodes).
  Senders are included so a transmission nobody hears — a lone node
  broadcasting into the void — still wakes its own round tick, exactly
  as the tick-everyone engine would.
* **Kernel-backed topology.**  Neighbor lookup and ``send()``
  validation run on the shared
  :class:`~repro.distributed.simulator.RadioTopology` (interned
  :mod:`repro.graphs.backend` kernel, cached receiver tuples, O(1)
  adjacency membership), and one ``Context`` per node is reused for
  every callback.

:func:`simulate_components` adds the orthogonal axis: independent
connected components share no messages, so they shard across
:func:`repro.experiments.parallel.parallel_map` worker processes and
their metrics merge deterministically with
:meth:`~repro.distributed.simulator.SimMetrics.merge_parallel`
(rounds max, message work summed — the totals of one whole-topology
run, whatever ``jobs`` is).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Hashable, Mapping

from ..graphs.graph import Graph
from ..obs import OBS
from .simulator import (
    Context,
    Message,
    NodeProcess,
    RadioTopology,
    SimMetrics,
    Simulator,
)

__all__ = [
    "ENGINES",
    "RoundTelemetry",
    "BatchedSimulator",
    "make_simulator",
    "simulate_components",
]

#: Valid ``engine=`` arguments of the protocol entry points.
ENGINES = ("batched", "reference")


class RoundTelemetry:
    """Opt-in per-round telemetry for :class:`BatchedSimulator`.

    When attached (``telemetry=`` on the engine or
    :func:`make_simulator`), the engine reports one sample per sampled
    round: the **active-node count** (nodes that got a tick), the
    **messages delivered** this round, and the **queue depth** left for
    the next round.  ``every=k`` samples rounds ``1, 1+k, 1+2k, ...``
    so long simulations pay O(rounds / k) bookkeeping; detached, the
    engine pays a single ``is not None`` check per round — comfortably
    inside the existing ≤5% disabled-overhead budget.

    Samples accumulate in :attr:`samples`; when a
    :class:`~repro.obs.core.Registry` is supplied, each sample also
    feeds the ``sim.round.active`` / ``sim.round.delivered`` /
    ``sim.round.queue`` histograms and the ``sim.round.sampled``
    counter (docs/observability.md §7), so round telemetry merges and
    exports like every other metric.  :meth:`write` replays the samples
    as a ``repro.obs/metrics-snapshot/v1`` JSONL stream — one line per
    sample, raw values in ``extra`` — viewable with
    ``python -m repro obs tail``.
    """

    __slots__ = ("every", "registry", "samples", "rounds_seen")

    def __init__(self, every: int = 1, registry=None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.registry = registry
        self.samples: list[dict] = []
        self.rounds_seen = 0

    def record(self, round_no: int, *, active: int, delivered: int,
               queued: int) -> None:
        """Called by the engine once per round; samples every ``k``-th."""
        self.rounds_seen += 1
        if (round_no - 1) % self.every:
            return
        sample = {
            "round": round_no,
            "active": active,
            "delivered": delivered,
            "queue": queued,
        }
        self.samples.append(sample)
        registry = self.registry
        if registry is not None:
            registry.observe("sim.round.active", active)
            registry.observe("sim.round.delivered", delivered)
            registry.observe("sim.round.queue", queued)
            registry.incr("sim.round.sampled")

    def snapshot_registry(self):
        """A fresh registry holding the ``sim.round.*`` view of the
        accumulated samples (independent of :attr:`registry`)."""
        from ..obs.core import Registry

        registry = Registry()
        for sample in self.samples:
            registry.observe("sim.round.active", sample["active"])
            registry.observe("sim.round.delivered", sample["delivered"])
            registry.observe("sim.round.queue", sample["queue"])
            registry.incr("sim.round.sampled")
        return registry

    def write(self, path, *, source: str = "sim") -> int:
        """Replay the samples as a metrics-snapshot/v1 JSONL stream.

        One line per sample, with the cumulative ``sim.round.*``
        registry state up to that round and the raw per-round values in
        ``extra``.  Returns the number of lines written.
        """
        from ..obs.core import Registry
        from ..obs.expose import SnapshotStream

        registry = Registry()
        with SnapshotStream(path, source=source) as stream:
            for sample in self.samples:
                registry.observe("sim.round.active", sample["active"])
                registry.observe("sim.round.delivered", sample["delivered"])
                registry.observe("sim.round.queue", sample["queue"])
                registry.incr("sim.round.sampled")
                stream.write(registry, extra=sample)
        return len(self.samples)


class BatchedSimulator:
    """Run one protocol over a fixed topology, batched per round.

    Drop-in for :class:`~repro.distributed.simulator.Simulator`: same
    constructor, same ``run`` contract, same ``metrics`` /
    ``processes`` / ``round`` surface, bit-identical results.  See the
    module docstring for what is different inside the loop.
    """

    def __init__(
        self,
        graph: Graph,
        factory: Callable[[Hashable], NodeProcess],
        *,
        topology: RadioTopology | None = None,
        record_rounds: bool = False,
        telemetry: RoundTelemetry | None = None,
    ):
        self.graph = graph
        self.topology = topology if topology is not None else RadioTopology(graph)
        self.processes: dict[Hashable, NodeProcess] = {
            v: factory(v) for v in graph.nodes()
        }
        self.telemetry = telemetry
        self.metrics = SimMetrics()
        self.round = 0
        self.round_log: list[tuple[int, int]] | None = (
            [] if record_rounds else None
        )
        self._queue: deque[tuple[Hashable, tuple, str, Mapping[str, Any]]] = deque()
        self._active_requests: set[Hashable] = set()
        self._contexts: dict[Hashable, Context] = {
            v: Context(self, v) for v in self.processes
        }

    def _enqueue(
        self, sender: Hashable, receivers: tuple, kind: str, payload: Mapping[str, Any]
    ) -> None:
        self._queue.append((sender, receivers, kind, payload))
        self.metrics.transmissions += 1
        self.metrics.by_kind[kind] += 1

    def run(self, max_rounds: int = 10_000) -> SimMetrics:
        """Execute until quiescence or ``max_rounds``.

        Returns the metrics (also available as ``self.metrics``).

        Raises:
            RuntimeError: if the round cap is hit with work remaining —
                a protocol that fails to quiesce is a bug, not a result.
        """
        processes = self.processes
        contexts = self._contexts
        metrics = self.metrics
        order_of = self.topology.order_of
        ordered = list(processes)  # dense-id order == dict order
        telemetry = self.telemetry
        node_rounds = 0
        deliver_batches = 0
        for node_id, proc in processes.items():
            proc.on_start(contexts[node_id])
        queue = self._queue
        while queue or self._active_requests:
            if self.round >= max_rounds:
                raise RuntimeError(
                    f"protocol did not quiesce within {max_rounds} rounds"
                )
            self.round += 1
            metrics.rounds = self.round
            # Requests made during last round's callbacks (including
            # on_message) define this round's standing activity; the
            # set is re-armed before any delivery, so a stay_active()
            # from inside on_messages lands in the *next* round's set.
            requested = self._active_requests
            self._active_requests = set()
            inflight = queue
            self._queue = queue = deque()
            # Group this round's deliveries into per-node inboxes, in
            # global queue order — each inbox ends up in exactly the
            # arrival order the per-message engine would produce.
            inboxes: dict[Hashable, list[Message]] = {}
            senders: set[Hashable] = set()
            receptions = 0
            for sender, receivers, kind, payload in inflight:
                senders.add(sender)
                msg = Message(sender=sender, kind=kind, payload=payload)
                receptions += len(receivers)
                for r in receivers:
                    box = inboxes.get(r)
                    if box is None:
                        inboxes[r] = [msg]
                    else:
                        box.append(msg)
            metrics.receptions += receptions
            deliver_batches += len(inboxes)
            for node_id, box in inboxes.items():
                processes[node_id].on_messages(contexts[node_id], box)
            # Round tick, active nodes only, in reference dict order.
            if requested:
                senders.update(requested)
            senders.update(inboxes)
            node_rounds += len(senders)
            if len(senders) == len(ordered):
                active = ordered
            else:
                active = sorted(senders, key=order_of.__getitem__)
            for node_id in active:
                processes[node_id].on_round(contexts[node_id])
            if telemetry is not None:
                # queued = messages the callbacks just produced for the
                # next round; delivered/active describe this round.
                telemetry.record(
                    self.round,
                    active=len(senders),
                    delivered=receptions,
                    queued=len(queue),
                )
            if self.round_log is not None:
                self.round_log.append(
                    (metrics.transmissions, metrics.receptions)
                )
        Simulator._mirror_totals(self)
        if OBS.enabled:
            OBS.incr("sim.batch.node_rounds", node_rounds)
            OBS.incr("sim.batch.deliver_batches", deliver_batches)
        return metrics


def make_simulator(
    graph: Graph,
    factory: Callable[[Hashable], NodeProcess],
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
    record_rounds: bool = False,
    telemetry: RoundTelemetry | None = None,
) -> "BatchedSimulator | Simulator":
    """Build the requested engine over ``graph`` — the protocols' seam.

    ``engine`` is ``"batched"`` (default: the scaled engine) or
    ``"reference"`` (the per-message baseline).  Results are
    bit-identical either way; the choice is purely a performance —
    and, for the equivalence suite, a cross-checking — decision.
    ``telemetry`` attaches a :class:`RoundTelemetry` sampler (batched
    engine only — the reference engine is the minimal semantic
    baseline and stays uninstrumented).

    Raises:
        ValueError: on an unknown engine name, or ``telemetry`` with
            the reference engine.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine != "batched":
        if telemetry is not None:
            raise ValueError("telemetry= requires the batched engine")
        return Simulator(
            graph, factory, topology=topology, record_rounds=record_rounds
        )
    return BatchedSimulator(
        graph,
        factory,
        topology=topology,
        record_rounds=record_rounds,
        telemetry=telemetry,
    )


def _component_worker(
    task: tuple[Graph, Callable, Callable, str, int],
):
    """Run one component's simulation in (possibly) a worker process.

    Module-level so :func:`repro.experiments.parallel.parallel_map` can
    pickle it; the factory and extractor must be picklable too when
    ``jobs > 1`` (module-level functions or ``functools.partial``).
    """
    subgraph, factory, extract, engine, max_rounds = task
    sim = make_simulator(subgraph, factory, engine=engine)
    metrics = sim.run(max_rounds=max_rounds)
    result = extract(sim) if extract is not None else None
    return result, metrics


def simulate_components(
    graph: Graph,
    factory: Callable[[Hashable], NodeProcess],
    *,
    extract: Callable[[Any], Any] | None = None,
    jobs: int = 1,
    engine: str = "batched",
    topology: RadioTopology | None = None,
    max_rounds: int = 10_000,
) -> tuple[list, SimMetrics]:
    """Shard one protocol run across connected components.

    Components exchange no messages, so each is its own simulation;
    with ``jobs > 1`` they spread over
    :func:`repro.experiments.parallel.parallel_map` worker processes.
    Determinism is preserved end to end: components are enumerated in
    first-node order, results come back in input order whatever the
    scheduling, and the per-component metrics merge with
    :meth:`SimMetrics.merge_parallel` — so the returned totals are
    bit-identical to one simulator running the whole topology, and to
    the ``jobs=1`` serial loop.

    Args:
        graph: the (possibly disconnected) communication topology.
        factory: per-node process factory, as for the engines; must be
            picklable for ``jobs > 1``.
        extract: optional per-component reducer called with the
            finished simulator in the worker; its (picklable) return
            value lands in the result list.  ``None`` records ``None``
            per component.
        jobs: worker processes (``<= 1`` runs serial in-process).
        engine: ``"batched"`` or ``"reference"``, per component.
        topology: optional prebuilt :class:`RadioTopology` of ``graph``
            (used for component discovery; per-component simulators
            intern their own subgraph either way).
        max_rounds: per-component round cap.

    Returns:
        ``(results, metrics)`` — one extracted result per component in
        first-node order, and the parallel-merged metrics.
    """
    from ..experiments.parallel import parallel_map

    topo = topology if topology is not None else RadioTopology(graph)
    view = topo.view
    components = view.connected_components()
    if len(components) <= 1:
        sim = make_simulator(graph, factory, engine=engine, topology=topo)
        metrics = sim.run(max_rounds=max_rounds)
        result = extract(sim) if extract is not None else None
        return [result], metrics
    tasks = [
        (
            graph.subgraph([view.node_at(i) for i in comp]),
            factory,
            extract,
            engine,
            max_rounds,
        )
        for comp in components
    ]
    outcomes = parallel_map(_component_worker, tasks, jobs=jobs)
    results = [result for result, _ in outcomes]
    merged = SimMetrics()
    for _, metrics in outcomes:
        merged = merged.merge_parallel(metrics)
    if OBS.enabled:
        OBS.incr("sim.components.sharded", len(components))
    return results, merged
