"""Distributed substrate: synchronous simulator and the CDS protocols.

Message-passing renditions of the paper's setting: leader election,
BFS-tree construction, the rank-based MIS election of [10], the
Section III tree-parent connector protocol, and a leader-coordinated
Section IV max-gain connector protocol — all with message/round
accounting.

Two round engines share the simulator contract: the per-message
reference :class:`Simulator` and the scaled
:class:`~repro.distributed.engine.BatchedSimulator` (per-node inbox
batching, active-set scheduling, kernel-backed topology) — every
protocol entry point takes ``engine=`` and all run batched by default
with bit-identical metrics and outputs.  :func:`simulate_components`
shards disconnected topologies across worker processes, and the MIS
election's node-priority order is pluggable via ``priority=`` /
:func:`make_priority`.
"""

from .simulator import (
    Context,
    Message,
    NodeProcess,
    RadioTopology,
    SimMetrics,
    Simulator,
)
from .engine import (
    ENGINES,
    BatchedSimulator,
    RoundTelemetry,
    make_simulator,
    simulate_components,
)
from .leader import LeaderNode, elect_leader
from .bfs_tree import BFSNode, DistributedTree, build_bfs_tree
from .mis_protocol import PRIORITIES, MISNode, elect_mis, make_priority
from .luby import LubyNode, luby_mis
from .maintenance_protocol import distributed_join
from .traffic import TrafficStats, run_traffic
from .cds_protocol import (
    convergecast_max,
    distributed_greedy_cds,
    distributed_waf_cds,
    flood_min_labels,
    flood_value,
)

__all__ = [
    "Context",
    "Message",
    "NodeProcess",
    "RadioTopology",
    "SimMetrics",
    "Simulator",
    "ENGINES",
    "BatchedSimulator",
    "RoundTelemetry",
    "make_simulator",
    "simulate_components",
    "LeaderNode",
    "elect_leader",
    "BFSNode",
    "DistributedTree",
    "build_bfs_tree",
    "PRIORITIES",
    "MISNode",
    "elect_mis",
    "make_priority",
    "convergecast_max",
    "distributed_greedy_cds",
    "distributed_waf_cds",
    "flood_min_labels",
    "flood_value",
    "LubyNode",
    "luby_mis",
    "distributed_join",
    "TrafficStats",
    "run_traffic",
]
