"""Distributed substrate: synchronous simulator and the CDS protocols.

Message-passing renditions of the paper's setting: leader election,
BFS-tree construction, the rank-based MIS election of [10], the
Section III tree-parent connector protocol, and a leader-coordinated
Section IV max-gain connector protocol — all with message/round
accounting.
"""

from .simulator import Context, Message, NodeProcess, SimMetrics, Simulator
from .leader import LeaderNode, elect_leader
from .bfs_tree import BFSNode, DistributedTree, build_bfs_tree
from .mis_protocol import MISNode, elect_mis
from .luby import LubyNode, luby_mis
from .maintenance_protocol import distributed_join
from .traffic import TrafficStats, run_traffic
from .cds_protocol import (
    convergecast_max,
    distributed_greedy_cds,
    distributed_waf_cds,
    flood_min_labels,
    flood_value,
)

__all__ = [
    "Context",
    "Message",
    "NodeProcess",
    "SimMetrics",
    "Simulator",
    "LeaderNode",
    "elect_leader",
    "BFSNode",
    "DistributedTree",
    "build_bfs_tree",
    "MISNode",
    "elect_mis",
    "convergecast_max",
    "distributed_greedy_cds",
    "distributed_waf_cds",
    "flood_min_labels",
    "flood_value",
    "LubyNode",
    "luby_mis",
    "distributed_join",
    "TrafficStats",
    "run_traffic",
]
