"""Distributed backbone repair for a joining node.

The message-level counterpart of :meth:`repro.cds.DynamicCDS.add_node`:
when a node powers on inside an existing network with a maintained
backbone, repair is a purely *local* protocol —

1. the joiner broadcasts ``hello``;
2. every neighbor replies with its role (backbone or not) and, if not,
   how many backbone nodes it hears (its promotion fitness);
3. if any neighbor was backbone, the joiner is dominated: done;
4. otherwise the joiner unicast-``promote``s its fittest neighbor,
   which joins the backbone and announces the new role.

Cost: ``1 + deg(joiner) (+2)`` transmissions and three rounds — O(1) in
network size, the point of local repair (a rebuild costs the whole
pipeline).  Correctness matches the centralized repair rule: the
promoted node is dominated by the old backbone, so the backbone stays
connected, and it covers the joiner.
"""

from __future__ import annotations

from typing import Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator

__all__ = ["distributed_join"]


class _JoinNode(NodeProcess):
    """Roles: the joiner, backbone members, and plain members."""

    def __init__(self, node_id: Hashable, joiner: Hashable, backbone: frozenset):
        super().__init__(node_id)
        self.joiner = joiner
        self.in_backbone = node_id in backbone
        self.backbone_view = backbone  # static knowledge from steady state
        self._replies: dict[Hashable, tuple[bool, int]] = {}
        self.promoted = False

    def on_start(self, ctx: Context) -> None:
        if self.node_id == self.joiner:
            ctx.broadcast("hello")

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "hello":
            fitness = sum(
                1 for u in ctx.neighbors if u in self.backbone_view
            )
            ctx.send(
                message.sender,
                "hello-reply",
                backbone=self.in_backbone,
                fitness=fitness,
            )
        elif message.kind == "hello-reply" and self.node_id == self.joiner:
            self._replies[message.sender] = (
                message.payload["backbone"],
                message.payload["fitness"],
            )
            if len(self._replies) == len(ctx.neighbors):
                self._decide(ctx)
        elif message.kind == "promote":
            self.promoted = True
            self.in_backbone = True
            ctx.broadcast("role-announce")

    def _decide(self, ctx: Context) -> None:
        if any(is_backbone for is_backbone, _ in self._replies.values()):
            return  # dominated; no repair needed
        best = max(
            self._replies,
            key=lambda u: (self._replies[u][1], _order_key(u)),
        )
        ctx.send(best, "promote")


def _order_key(node):
    try:
        return node
    except TypeError:  # pragma: no cover - defensive
        return repr(node)


def distributed_join(
    graph: Graph,
    joiner: Hashable,
    backbone: frozenset,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[frozenset, SimMetrics]:
    """Run the join-repair protocol.

    Args:
        graph: the topology *including* the joiner and its new links.
        joiner: the node that just powered on.
        backbone: the steady-state backbone before the join (must be a
            CDS of the graph without the joiner).

    Returns:
        ``(new_backbone, metrics)``.

    Raises:
        ValueError: if the joiner is unknown or isolated.
    """
    if joiner not in graph:
        raise ValueError(f"joiner {joiner!r} not in graph")
    if not graph.neighbors(joiner):
        raise ValueError("joiner has no radio neighbors")
    sim = make_simulator(
        graph,
        lambda v: _JoinNode(v, joiner, frozenset(backbone)),
        engine=engine,
        topology=topology,
    )
    metrics = sim.run()
    new_backbone = set(backbone)
    for proc in sim.processes.values():
        assert isinstance(proc, _JoinNode)
        if proc.promoted:
            new_backbone.add(proc.node_id)
    return frozenset(new_backbone), metrics
