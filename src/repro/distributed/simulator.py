"""Synchronous message-passing simulator for wireless ad hoc networks.

The paper's setting is *distributed* CDS construction: [10] and [1] are
analyzed in terms of message and time complexity.  This simulator
provides the standard synchronous model those analyses assume:

* time advances in rounds;
* a message sent in round ``r`` is delivered at the start of round
  ``r + 1``;
* a *local broadcast* is a single transmission heard by every
  neighbor (the wireless medium), while a *unicast* is a single
  transmission with one reception — message complexity counts
  transmissions, matching the radio-energy accounting of the papers.

Protocols subclass :class:`NodeProcess` and react to ``on_start`` /
``on_message`` / ``on_round`` — or the batch callback ``on_messages``,
which receives a node's whole per-round inbox at once (the default
implementation falls back to per-message ``on_message``, so existing
protocols run unchanged on every engine).  Two engines share this
module's contract:

* :class:`Simulator` — the reference engine: delivers message by
  message and ticks ``on_round`` on every node every round.  Simple,
  and the semantic baseline the equivalence suite pins the batched
  engine against.
* :class:`~repro.distributed.engine.BatchedSimulator` — the scaled
  engine (``distributed/engine.py``): per-node inbox batching plus an
  active-set so idle nodes cost nothing.  Bit-identical metrics and
  protocol outputs; 10⁴–10⁵-node runs are its reason to exist.

Both run until quiescence (no messages in flight and no node asked to
stay active) or a round cap, and record :class:`SimMetrics`.  Topology
access goes through :class:`RadioTopology` — an interned kernel view
(:mod:`repro.graphs.backend`) with the per-node receiver tuple cached
once per simulator, so a broadcast costs one queue append instead of a
neighbor-list rebuild plus copy, and ``send()`` validates against O(1)
adjacency membership instead of scanning the base graph.  When
:data:`repro.obs.OBS` is enabled, each completed run also mirrors its
totals into the registry (``sim.rounds``, ``sim.transmissions``,
``sim.receptions``, and one ``sim.msg.<kind>`` counter per message
kind).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, TypeVar

from ..graphs.graph import Graph
from ..obs import OBS

N = TypeVar("N", bound=Hashable)

__all__ = [
    "Message",
    "SimMetrics",
    "NodeProcess",
    "Context",
    "RadioTopology",
    "Simulator",
]


@dataclass(frozen=True, slots=True)
class Message:
    """A delivered message: who sent it, its kind tag, and its payload."""

    sender: Hashable
    kind: str
    payload: Mapping[str, Any]


@dataclass
class SimMetrics:
    """Complexity accounting for one simulation run.

    ``transmissions`` is the message complexity in the wireless model
    (one local broadcast = one transmission); ``receptions`` counts
    deliveries; ``rounds`` is the time complexity.
    """

    rounds: int = 0
    transmissions: int = 0
    receptions: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def merge(self, other: "SimMetrics") -> "SimMetrics":
        """Combined metrics of sequentially-composed phases."""
        merged = SimMetrics(
            rounds=self.rounds + other.rounds,
            transmissions=self.transmissions + other.transmissions,
            receptions=self.receptions + other.receptions,
            by_kind=self.by_kind + other.by_kind,
        )
        return merged

    def merge_parallel(self, other: "SimMetrics") -> "SimMetrics":
        """Combined metrics of *concurrently*-run partitions.

        Independent connected components execute simultaneously in the
        synchronous model, so time is the maximum of the parts while
        message work still sums — exactly the totals one simulator
        running the whole (disconnected) topology would record.  Used
        by :func:`repro.distributed.engine.simulate_components` to merge
        per-component shards deterministically.
        """
        merged = SimMetrics(
            rounds=max(self.rounds, other.rounds),
            transmissions=self.transmissions + other.transmissions,
            receptions=self.receptions + other.receptions,
            by_kind=self.by_kind + other.by_kind,
        )
        return merged


class RadioTopology:
    """One topology, interned once, shared by every phase and engine.

    Wraps a kernel view (:class:`~repro.graphs.backend.Backend`) and
    caches what the simulators' hot paths need in *label* space:

    * ``receivers[v]`` — the per-node receiver tuple, gathered from the
      kernel's CSR rows once (adjacency insertion order preserved, so
      delivery order matches the dict-based graph exactly).  A local
      broadcast reuses this tuple; nothing is rebuilt or copied per
      call.
    * ``can_reach(u, v)`` — O(1) amortized adjacency membership for
      ``send()`` validation (per-sender frozensets materialized lazily,
      so broadcast-only protocols never pay for them).
    * ``order_of[v]`` — the dense kernel id, which is also the process
      iteration order; the batched engine sorts its active set by it so
      callback order matches the reference engine's dict order.

    Build one per topology and pass it to every simulator of a
    multi-phase pipeline (``Simulator(graph, factory, topology=topo)``)
    to pay the O(V+E) interning once instead of once per phase.
    """

    __slots__ = ("graph", "view", "receivers", "order_of", "_nbr_sets")

    def __init__(self, graph: Graph, view=None):
        from ..graphs.backend import adjacency_rows, build_kernel

        self.graph = graph
        if view is None:
            view = build_kernel(graph, "indexed")
        self.view = view
        nodes = view.nodes
        self.receivers: dict[Hashable, tuple] = {
            nodes[i]: tuple(nodes[j] for j in row)
            for i, row in enumerate(adjacency_rows(view))
        }
        self.order_of: dict[Hashable, int] = {
            node: i for i, node in enumerate(nodes)
        }
        self._nbr_sets: dict[Hashable, frozenset] = {}

    def __len__(self) -> int:
        return len(self.receivers)

    def can_reach(self, sender: Hashable, receiver: Hashable) -> bool:
        """Whether ``receiver`` is in ``sender``'s radio range.

        Raises:
            KeyError: if ``sender`` is not a node of the topology.
        """
        nbrs = self._nbr_sets.get(sender)
        if nbrs is None:
            nbrs = self._nbr_sets[sender] = frozenset(self.receivers[sender])
        return receiver in nbrs


class Context:
    """The API a node process sees during a callback.

    One context per node is created up front and reused for every
    callback of the run — a context is pure plumbing (simulator +
    node id), so per-delivery allocation bought nothing.
    """

    __slots__ = ("_sim", "_node_id")

    def __init__(self, sim, node_id: Hashable):
        self._sim = sim
        self._node_id = node_id

    @property
    def node_id(self) -> Hashable:
        return self._node_id

    @property
    def round(self) -> int:
        return self._sim.round

    @property
    def neighbors(self) -> list:
        """Ids of this node's radio neighbors."""
        return list(self._sim.topology.receivers[self._node_id])

    def is_neighbor(self, node: Hashable) -> bool:
        """O(1) membership test against this node's radio neighborhood
        (``node in set(ctx.neighbors)`` without the set build)."""
        return self._sim.topology.can_reach(self._node_id, node)

    def send(self, to: Hashable, kind: str, **payload: Any) -> None:
        """Unicast to a neighbor (delivered next round).

        Raises:
            ValueError: if ``to`` is not a neighbor — radios cannot
                reach beyond the unit disk.
        """
        if not self._sim.topology.can_reach(self._node_id, to):
            raise ValueError(f"{self._node_id!r} cannot reach non-neighbor {to!r}")
        self._sim._enqueue(self._node_id, (to,), kind, payload)

    def broadcast(self, kind: str, **payload: Any) -> None:
        """Local broadcast to all neighbors: one transmission."""
        self._sim._enqueue(
            self._node_id,
            self._sim.topology.receivers[self._node_id],
            kind,
            payload,
        )

    def stay_active(self) -> None:
        """Keep the simulation alive even with no messages in flight.

        Needed by protocols with internal timers (e.g. waiting a known
        number of rounds); quiescence otherwise ends the run.  A
        request made during *any* callback of round ``r`` (including
        ``on_message``) keeps the node active through round ``r + 1``.
        """
        self._sim._active_requests.add(self._node_id)


class NodeProcess:
    """Base class for protocol node state machines.

    Attributes:
        node_id: this node's identifier.
    """

    def __init__(self, node_id: Hashable):
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        """Called once, in round 0, before any delivery."""

    def on_message(self, ctx: Context, message: Message) -> None:
        """Called for each message delivered this round."""

    def on_messages(self, ctx: Context, messages: list) -> None:
        """Batch delivery: this round's whole inbox, in arrival order.

        The batched engine calls this once per receiving node per
        round.  The default implementation dispatches per message, so
        protocols that only implement :meth:`on_message` behave
        identically on both engines; hot protocols override it to
        process the batch in one pass.
        """
        on_message = self.on_message
        for message in messages:
            on_message(ctx, message)

    def on_round(self, ctx: Context) -> None:
        """Called once per round after all deliveries of the round.

        The reference engine ticks every node; the batched engine only
        ticks *active* nodes — those that received or sent a message
        delivered this round, or requested ``stay_active()`` last
        round.  A correct protocol acts in ``on_round`` only on state
        changed by this round's deliveries or under a standing
        ``stay_active()`` request, which makes the two schedules
        indistinguishable.
        """


class Simulator:
    """The reference engine: per-message delivery, every node ticked.

    Args:
        graph: the communication topology; nodes are the process ids.
        factory: builds the :class:`NodeProcess` for each node id.
        topology: an optional prebuilt :class:`RadioTopology` (shared
            across the phases of a pipeline); built from ``graph`` when
            omitted.
        record_rounds: when true, ``round_log`` records per-round
            ``(transmissions, receptions)`` running totals — the
            lockstep trace the engine-equivalence suite compares.
    """

    def __init__(
        self,
        graph: Graph,
        factory: Callable[[Hashable], NodeProcess],
        *,
        topology: RadioTopology | None = None,
        record_rounds: bool = False,
    ):
        self.graph = graph
        self.topology = topology if topology is not None else RadioTopology(graph)
        self.processes: dict[Hashable, NodeProcess] = {
            v: factory(v) for v in graph.nodes()
        }
        self.metrics = SimMetrics()
        self.round = 0
        self.round_log: list[tuple[int, int]] | None = (
            [] if record_rounds else None
        )
        self._queue: deque[tuple[Hashable, tuple, str, Mapping[str, Any]]] = deque()
        self._active_requests: set[Hashable] = set()
        self._contexts: dict[Hashable, Context] = {
            v: Context(self, v) for v in self.processes
        }

    def _enqueue(
        self, sender: Hashable, receivers: tuple, kind: str, payload: Mapping[str, Any]
    ) -> None:
        # ``receivers`` is either the cached (immutable) receiver tuple
        # or a single-element unicast tuple, and ``payload`` is the
        # fresh kwargs dict of the send call — neither needs a
        # defensive copy.
        self._queue.append((sender, receivers, kind, payload))
        self.metrics.transmissions += 1
        self.metrics.by_kind[kind] += 1

    def _mirror_totals(self) -> None:
        if OBS.enabled:
            OBS.incr("sim.runs")
            OBS.incr("sim.rounds", self.metrics.rounds)
            OBS.incr("sim.transmissions", self.metrics.transmissions)
            OBS.incr("sim.receptions", self.metrics.receptions)
            for kind, count in self.metrics.by_kind.items():
                OBS.incr(f"sim.msg.{kind}", count)

    def run(self, max_rounds: int = 10_000) -> SimMetrics:
        """Execute until quiescence or ``max_rounds``.

        Returns the metrics (also available as ``self.metrics``).

        Raises:
            RuntimeError: if the round cap is hit with work remaining —
                a protocol that fails to quiesce is a bug, not a result.
        """
        contexts = self._contexts
        for node_id, proc in self.processes.items():
            proc.on_start(contexts[node_id])
        while self._queue or self._active_requests:
            if self.round >= max_rounds:
                raise RuntimeError(
                    f"protocol did not quiesce within {max_rounds} rounds"
                )
            self.round += 1
            self.metrics.rounds = self.round
            self._active_requests.clear()
            inflight = list(self._queue)
            self._queue.clear()
            # Deliver everything sent last round.
            for sender, receivers, kind, payload in inflight:
                msg = Message(sender=sender, kind=kind, payload=payload)
                for r in receivers:
                    self.metrics.receptions += 1
                    self.processes[r].on_message(contexts[r], msg)
            # Round tick.
            for node_id, proc in self.processes.items():
                proc.on_round(contexts[node_id])
            if self.round_log is not None:
                self.round_log.append(
                    (self.metrics.transmissions, self.metrics.receptions)
                )
        self._mirror_totals()
        return self.metrics
