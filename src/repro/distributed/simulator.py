"""Synchronous message-passing simulator for wireless ad hoc networks.

The paper's setting is *distributed* CDS construction: [10] and [1] are
analyzed in terms of message and time complexity.  This simulator
provides the standard synchronous model those analyses assume:

* time advances in rounds;
* a message sent in round ``r`` is delivered at the start of round
  ``r + 1``;
* a *local broadcast* is a single transmission heard by every
  neighbor (the wireless medium), while a *unicast* is a single
  transmission with one reception — message complexity counts
  transmissions, matching the radio-energy accounting of the papers.

Protocols subclass :class:`NodeProcess` and react to ``on_start`` /
``on_message`` / ``on_round``.  The simulator runs until quiescence
(no messages in flight and no node asked to stay active) or a round
cap, and records :class:`SimMetrics`.  When :data:`repro.obs.OBS` is
enabled, each completed run also mirrors its totals into the registry
(``sim.rounds``, ``sim.transmissions``, ``sim.receptions``, and one
``sim.msg.<kind>`` counter per message kind).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, TypeVar

from ..graphs.graph import Graph
from ..obs import OBS

N = TypeVar("N", bound=Hashable)

__all__ = ["Message", "SimMetrics", "NodeProcess", "Context", "Simulator"]


@dataclass(frozen=True, slots=True)
class Message:
    """A delivered message: who sent it, its kind tag, and its payload."""

    sender: Hashable
    kind: str
    payload: Mapping[str, Any]


@dataclass
class SimMetrics:
    """Complexity accounting for one simulation run.

    ``transmissions`` is the message complexity in the wireless model
    (one local broadcast = one transmission); ``receptions`` counts
    deliveries; ``rounds`` is the time complexity.
    """

    rounds: int = 0
    transmissions: int = 0
    receptions: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def merge(self, other: "SimMetrics") -> "SimMetrics":
        """Combined metrics of sequentially-composed phases."""
        merged = SimMetrics(
            rounds=self.rounds + other.rounds,
            transmissions=self.transmissions + other.transmissions,
            receptions=self.receptions + other.receptions,
            by_kind=self.by_kind + other.by_kind,
        )
        return merged


class Context:
    """The API a node process sees during a callback."""

    __slots__ = ("_sim", "_node_id")

    def __init__(self, sim: "Simulator", node_id: Hashable):
        self._sim = sim
        self._node_id = node_id

    @property
    def node_id(self) -> Hashable:
        return self._node_id

    @property
    def round(self) -> int:
        return self._sim.round

    @property
    def neighbors(self) -> list:
        """Ids of this node's radio neighbors."""
        return self._sim.graph.neighbors(self._node_id)

    def send(self, to: Hashable, kind: str, **payload: Any) -> None:
        """Unicast to a neighbor (delivered next round).

        Raises:
            ValueError: if ``to`` is not a neighbor — radios cannot
                reach beyond the unit disk.
        """
        if not self._sim.graph.has_edge(self._node_id, to):
            raise ValueError(f"{self._node_id!r} cannot reach non-neighbor {to!r}")
        self._sim._enqueue(self._node_id, [to], kind, payload)

    def broadcast(self, kind: str, **payload: Any) -> None:
        """Local broadcast to all neighbors: one transmission."""
        self._sim._enqueue(self._node_id, self.neighbors, kind, payload)

    def stay_active(self) -> None:
        """Keep the simulation alive even with no messages in flight.

        Needed by protocols with internal timers (e.g. waiting a known
        number of rounds); quiescence otherwise ends the run.
        """
        self._sim._active_requests.add(self._node_id)


class NodeProcess:
    """Base class for protocol node state machines.

    Attributes:
        node_id: this node's identifier.
    """

    def __init__(self, node_id: Hashable):
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        """Called once, in round 0, before any delivery."""

    def on_message(self, ctx: Context, message: Message) -> None:
        """Called for each message delivered this round."""

    def on_round(self, ctx: Context) -> None:
        """Called once per round after all deliveries of the round."""


class Simulator:
    """Run one protocol over a fixed topology.

    Args:
        graph: the communication topology; nodes are the process ids.
        factory: builds the :class:`NodeProcess` for each node id.
    """

    def __init__(self, graph: Graph, factory: Callable[[Hashable], NodeProcess]):
        self.graph = graph
        self.processes: dict[Hashable, NodeProcess] = {
            v: factory(v) for v in graph.nodes()
        }
        self.metrics = SimMetrics()
        self.round = 0
        self._queue: deque[tuple[Hashable, list, str, Mapping[str, Any]]] = deque()
        self._active_requests: set[Hashable] = set()

    def _enqueue(
        self, sender: Hashable, receivers: list, kind: str, payload: Mapping[str, Any]
    ) -> None:
        self._queue.append((sender, list(receivers), kind, dict(payload)))
        self.metrics.transmissions += 1
        self.metrics.by_kind[kind] += 1

    def run(self, max_rounds: int = 10_000) -> SimMetrics:
        """Execute until quiescence or ``max_rounds``.

        Returns the metrics (also available as ``self.metrics``).

        Raises:
            RuntimeError: if the round cap is hit with work remaining —
                a protocol that fails to quiesce is a bug, not a result.
        """
        for node_id, proc in self.processes.items():
            proc.on_start(Context(self, node_id))
        while self._queue or self._active_requests:
            if self.round >= max_rounds:
                raise RuntimeError(
                    f"protocol did not quiesce within {max_rounds} rounds"
                )
            self.round += 1
            self.metrics.rounds = self.round
            self._active_requests.clear()
            inflight = list(self._queue)
            self._queue.clear()
            # Deliver everything sent last round.
            for sender, receivers, kind, payload in inflight:
                msg = Message(sender=sender, kind=kind, payload=payload)
                for r in receivers:
                    self.metrics.receptions += 1
                    self.processes[r].on_message(Context(self, r), msg)
            # Round tick.
            for node_id, proc in self.processes.items():
                proc.on_round(Context(self, node_id))
        if OBS.enabled:
            OBS.incr("sim.runs")
            OBS.incr("sim.rounds", self.metrics.rounds)
            OBS.incr("sim.transmissions", self.metrics.transmissions)
            OBS.incr("sim.receptions", self.metrics.receptions)
            for kind, count in self.metrics.by_kind.items():
                OBS.incr(f"sim.msg.{kind}", count)
        return self.metrics
