"""Leader election by min-id flooding.

Both phases of [10] are initiated by a *leader*; the standard way to
get one in an ad hoc network is flooding the smallest id.  Every node
broadcasts its best-known id whenever it improves; after the flood
quiesces, the unique node whose own id equals its best-known id is the
leader.  Message complexity is ``O(n·D)`` transmissions in the worst
case (each node re-broadcasts at most once per improvement), time is
``O(D)`` rounds — both visible in the reported metrics.
"""

from __future__ import annotations

from typing import Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator

__all__ = ["elect_leader", "LeaderNode"]


class LeaderNode(NodeProcess):
    """Flood-min state machine."""

    def __init__(self, node_id: Hashable):
        super().__init__(node_id)
        self.best: Hashable = node_id
        self._dirty = True

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast("leader-id", best=self.best)
        self._dirty = False

    def on_message(self, ctx: Context, message: Message) -> None:
        candidate = message.payload["best"]
        if candidate < self.best:
            self.best = candidate
            self._dirty = True

    def on_round(self, ctx: Context) -> None:
        if self._dirty:
            ctx.broadcast("leader-id", best=self.best)
            self._dirty = False

    @property
    def is_leader(self) -> bool:
        return self.best == self.node_id


def elect_leader(
    graph: Graph,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[Hashable, SimMetrics]:
    """Run flood-min on ``graph``; return the leader and the metrics.

    Raises:
        ValueError: if the graph is empty.
        AssertionError: if more than one node believes it leads — only
            possible on a disconnected topology.
    """
    if len(graph) == 0:
        raise ValueError("cannot elect a leader on an empty graph")
    sim = make_simulator(graph, LeaderNode, engine=engine, topology=topology)
    metrics = sim.run()
    leaders = [p.node_id for p in sim.processes.values() if p.is_leader]  # type: ignore[attr-defined]
    if len(leaders) != 1:
        raise AssertionError(
            f"{len(leaders)} self-declared leaders; topology disconnected?"
        )
    return leaders[0], metrics
