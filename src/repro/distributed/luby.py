"""Luby's randomized distributed MIS.

The rank-based election of [10] (``mis_protocol``) is message-optimal
(2n transmissions) but needs ``O(n)`` rounds on worst-case topologies —
the decision cascades along chains.  Luby's classic algorithm trades
messages for time: in each phase every undecided node draws a random
priority, broadcasts it, and joins the MIS iff it beat all undecided
neighbors; joiners and their neighbors retire.  Expected ``O(log n)``
phases.

Caveats vs phase 1 of the paper: the result is a maximal independent
set (so a dominating set) but has **no 2-hop-separation guarantee and
no prescribed selection order**, so the Theorem 8/10 size analyses do
not apply.  The benchmark contrasts rounds and messages against the
rank cascade; the Steiner connector phase can still build a valid CDS
on top.
"""

from __future__ import annotations

import random
from typing import Hashable

from ..graphs.graph import Graph
from .simulator import Context, Message, NodeProcess, RadioTopology, SimMetrics
from .engine import make_simulator

__all__ = ["luby_mis", "LubyNode"]

UNDECIDED = "undecided"
IN_MIS = "in-mis"
OUT = "out"


class LubyNode(NodeProcess):
    """One Luby participant.

    Each *phase* spans three rounds: draw+broadcast priorities, decide
    and announce joins, retire and announce exits.  Randomness comes
    from a node-seeded ``random.Random`` so runs are reproducible.
    """

    def __init__(self, node_id: Hashable, seed: int):
        super().__init__(node_id)
        self.state = UNDECIDED
        self.rng = random.Random((seed, node_id).__repr__())
        self.active_neighbors: set[Hashable] = set()
        self._priorities: dict[Hashable, float] = {}
        self._my_priority = 0.0
        self._phase_round = 0

    def on_start(self, ctx: Context) -> None:
        self.active_neighbors = set(ctx.neighbors)
        self._begin_phase(ctx)

    def _begin_phase(self, ctx: Context) -> None:
        if self.state != UNDECIDED:
            return
        self._priorities = {}
        self._my_priority = self.rng.random()
        ctx.broadcast("priority", value=self._my_priority)
        self._phase_round = ctx.round

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "priority":
            self._priorities[message.sender] = message.payload["value"]
        elif message.kind == "joined":
            if self.state == UNDECIDED:
                self.state = OUT
                ctx.broadcast("retired")
            self.active_neighbors.discard(message.sender)
        elif message.kind == "retired":
            self.active_neighbors.discard(message.sender)

    def on_round(self, ctx: Context) -> None:
        if self.state != UNDECIDED:
            return
        ctx.stay_active()
        # Decide once all active neighbors' priorities are in.
        pending = [v for v in self.active_neighbors if v not in self._priorities]
        if not pending:
            relevant = [self._priorities[v] for v in self.active_neighbors]
            if all(self._my_priority > p for p in relevant):
                self.state = IN_MIS
                ctx.broadcast("joined")
            else:
                # Wait one round for joins to propagate, then re-draw.
                self._begin_phase(ctx)


def luby_mis(
    graph: Graph,
    seed: int = 0,
    *,
    engine: str = "batched",
    topology: RadioTopology | None = None,
) -> tuple[list, SimMetrics]:
    """Run Luby's algorithm; return the MIS (sorted) and run metrics.

    Ties between equal priorities are broken by the draw being from a
    continuous distribution (collisions have probability ~0; a replay
    with another seed resolves the astronomically unlikely tie).
    """
    sim = make_simulator(
        graph, lambda v: LubyNode(v, seed), engine=engine, topology=topology
    )
    metrics = sim.run()
    mis = []
    for proc in sim.processes.values():
        assert isinstance(proc, LubyNode)
        if proc.state == IN_MIS:
            mis.append(proc.node_id)
        elif proc.state == UNDECIDED:
            raise AssertionError(f"node {proc.node_id!r} finished undecided")
    # Defense in depth: phase interleaving is subtle, so the result is
    # validated before being returned rather than trusted.
    from ..graphs.properties import is_maximal_independent_set

    if not is_maximal_independent_set(graph, mis):
        raise AssertionError("Luby run produced a non-MIS; protocol bug")
    return sorted(mis), metrics
