"""Command-line entry point: ``python -m repro`` / ``repro-cds``.

Two modes:

* **experiments** (default) — run the registered paper-artifact
  experiments and print their tables::

      python -m repro --list          # show all experiment ids
      python -m repro T8 T10          # run two experiments
      python -m repro --all --csv out # run everything, dump CSVs
      python -m repro --all --jobs 4  # same, across 4 worker processes

* **solve** — run a CDS algorithm on a deployment CSV (``x,y`` header,
  one point per row; see :mod:`repro.io`)::

      python -m repro solve deploy.csv --algorithm greedy --viz
      python -m repro solve deploy.csv --algorithm waf --prune \
          --out backbone.json

Both modes accept the observability flags (see
``docs/observability.md``):

* ``--trace`` — print the counter/timer report after the run;
* ``--stats-out FILE`` — write a schema-checked
  :class:`repro.obs.RunRecord` JSON;
* ``--events-out FILE`` — write the ``repro.obs/event/v1`` JSONL span
  log (under ``--jobs N`` the per-worker logs are merged
  deterministically);
* ``--mem-trace`` — per-span peak memory via ``tracemalloc``
  (``mem.*`` counters in the record/report);
* ``--profile-out FILE`` — cProfile the run and write pstats.

::

      python -m repro T8 --stats-out rec.json --events-out t8.jsonl
      python -m repro --all --jobs 4 --stats-out rec.json
      python -m repro solve deploy.csv --algorithm greedy --trace \
          --mem-trace --profile-out solve.pstats

A third mode, **sweep**, runs one algorithm over an ``(n x seed)``
grid of random connected UDG instances with the reliability layer
underneath — fault isolation, bounded retries, per-cell timeouts, and
a checkpoint ledger so an interrupted sweep resumes only its missing
cells (see ``docs/robustness.md``)::

      python -m repro sweep --ns 50,100 --seeds 0:10 --algorithm greedy \
          --jobs 4 --retries 2 --cell-timeout 60 \
          --checkpoint sweep.jsonl
      python -m repro sweep --ns 50,100 --seeds 0:10 --algorithm greedy \
          --jobs 4 --checkpoint sweep.jsonl --resume   # after a crash

The reliability flags (``--checkpoint``/``--resume``/``--retries``/
``--cell-timeout``/``--backoff``, plus ``--inject-fault`` for chaos
drills) are also accepted by the experiments mode, where the "cells"
are the experiment ids themselves::

      python -m repro --all --jobs 4 --checkpoint exps.jsonl --retries 1
      python -m repro --all --jobs 4 --checkpoint exps.jsonl --resume

A fourth mode, **bench**, compares committed benchmark snapshots and
gates on regressions (see ``docs/performance.md`` §7)::

      python -m repro bench compare BENCH_baseline.json BENCH_pr3.json

A fifth mode, **serve**, runs the long-lived solve daemon — newline-
delimited JSON over TCP or a Unix socket, request batching through the
sweep machinery, and a fingerprint-keyed result cache whose hits are
bit-identical to cold solves (see ``docs/serving.md``) — with
**serve-client** as the matching one-shot client / load generator::

      python -m repro serve --port 7533 --jobs 4 --trace
      python -m repro serve-client --connect 127.0.0.1:7533 --n 60 --seed 2
      python -m repro serve-client --connect 127.0.0.1:7533 --stats
      python -m repro serve-client --connect 127.0.0.1:7533 --loadgen \
          --ns 60 --seeds 0:8 --requests 200 --out report.json
      python -m repro serve-client --connect 127.0.0.1:7533 --shutdown

Where each mode sits in the stack: ``docs/architecture.md``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

from .experiments.harness import all_experiments, get_experiment

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _solver_registry():
    from .baselines import ALL_BASELINES
    from .cds import (
        greedy_connector_cds,
        mfold_2conn_cds,
        mfold_greedy_cds,
        steiner_cds,
        waf_cds,
    )
    from .distributed.solvers import DISTRIBUTED_SOLVERS

    solvers = {
        "waf": waf_cds,
        "greedy": greedy_connector_cds,
        "steiner": steiner_cds,
        "mfold-greedy": mfold_greedy_cds,
        "mfold-2conn": mfold_2conn_cds,
    }
    solvers.update(ALL_BASELINES)
    solvers.update(DISTRIBUTED_SOLVERS)
    return solvers


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "solve":
        return _solve_main(args[1:])
    if args and args[0] == "sweep":
        return _sweep_main(args[1:])
    if args and args[0] == "bench":
        return _bench_main(args[1:])
    if args and args[0] == "serve":
        return _serve_main(args[1:])
    if args and args[0] == "serve-client":
        return _serve_client_main(args[1:])
    if args and args[0] == "obs":
        return _obs_main(args[1:])
    return _experiments_main(args)


def _obs_main(argv: Sequence[str]) -> int:
    """``python -m repro obs tail FILE``: live telemetry viewer."""
    if not argv or argv[0] != "tail":
        print(
            "usage: python -m repro obs tail FILE [--interval SECONDS] "
            "[--once]",
            file=sys.stderr,
        )
        return 2
    from .obs.tail import main as tail_main

    return tail_main(argv[1:])


def _bench_main(argv: Sequence[str]) -> int:
    """``python -m repro bench compare A.json B.json [...]``."""
    if not argv or argv[0] != "compare":
        print(
            "usage: python -m repro bench compare BENCH_A.json BENCH_B.json "
            "[...] [--threshold PCT] [--no-time-gate] [--out FILE]",
            file=sys.stderr,
        )
        return 2
    from .obs.trend import main as trend_main

    return trend_main(argv[1:])


def _serve_main(argv: Sequence[str]) -> int:
    """``python -m repro serve``: run the solve daemon until drained."""
    parser = argparse.ArgumentParser(
        prog="repro-cds serve",
        description=(
            "Run the long-lived solve daemon: newline-delimited JSON "
            "requests over TCP or a Unix socket, batched through the "
            "sweep machinery, with a fingerprint-keyed result cache "
            "whose hits are bit-identical to cold solves "
            "(docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=7533,
        metavar="N",
        help="TCP port; 0 lets the OS pick (default: 7533)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve on a Unix socket at PATH instead of TCP",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="solver processes per batch (default: 1, inline)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="how long the batcher waits to coalesce arrivals "
        "(default: 0.005)",
    )
    parser.add_argument(
        "--batch-max",
        type=_positive_int,
        default=32,
        metavar="N",
        help="hard batch-size cap (default: 32)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="LRU result-cache entries; 0 disables caching "
        "(default: 1024)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve a Prometheus text exposition (v0.0.4) at "
        "http://127.0.0.1:N/metrics while running; 0 lets the OS pick",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="append periodic repro.obs/metrics-snapshot/v1 JSONL "
        "snapshots to FILE (view live with 'python -m repro obs tail')",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="snapshot period for --metrics-out (default: 1.0)",
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)
    if args.metrics_interval <= 0:
        print("--metrics-interval must be > 0", file=sys.stderr)
        return 2

    from .serve import ServeConfig, run_server

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            jobs=args.jobs,
            batch_window=args.batch_window,
            batch_max=args.batch_max,
            cache_size=args.cache_size,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    telemetry: dict = {}

    def on_ready(server) -> None:
        address = server.address
        rendered = (
            address if isinstance(address, str) else f"{address[0]}:{address[1]}"
        )
        print(
            f"serving on {rendered} (jobs={args.jobs}, "
            f"batch-window={args.batch_window}s, batch-max={args.batch_max}, "
            f"cache={args.cache_size})",
            flush=True,
        )
        # Live telemetry (docs/observability.md §7): both consumers
        # render merge copies from SolveServer.metrics_registry, never
        # the shared OBS, so scraping cannot perturb the run record.
        if args.metrics_port is not None:
            from .obs.expose import MetricsExporter, render_exposition

            exporter = MetricsExporter(
                lambda: render_exposition(server.metrics_registry()),
                port=args.metrics_port,
            )
            host, metrics_port = exporter.start()
            telemetry["exporter"] = exporter
            print(
                f"metrics exposition on http://{host}:{metrics_port}/metrics",
                flush=True,
            )
        if args.metrics_out:
            from .obs.expose import PeriodicSnapshotter, SnapshotStream

            stream = SnapshotStream(args.metrics_out, source="serve")
            snapshotter = PeriodicSnapshotter(
                stream, server.metrics_registry, interval=args.metrics_interval
            )
            snapshotter.start()
            telemetry["snapshotter"] = snapshotter
            telemetry["stream"] = stream
            print(
                f"metrics snapshots to {args.metrics_out} "
                f"(every {args.metrics_interval}s)",
                flush=True,
            )

    session = _ObsSession(args)
    session.start()
    with session.profiled():
        server = run_server(config, on_ready=on_ready)
    if "exporter" in telemetry:
        telemetry["exporter"].stop()
    if "snapshotter" in telemetry:
        # stop() writes one final snapshot from the drained server, so
        # the stream's last line carries exactly the counters the
        # --stats-out run record freezes below.
        telemetry["snapshotter"].stop()
        telemetry["stream"].close()
        print(f"metrics snapshots written to {args.metrics_out}")
    # Fold the daemon's lifetime metrics (serve.* counters/timers/
    # histograms plus the merged solver counters) into the registry
    # before draining the session, so --trace/--stats-out describe the
    # whole serving run.
    if session.wanted:
        # The inline (jobs=1) solve path captures-and-resets the shared
        # registry around each cell, leaving the *last* cell's counters
        # behind; clear that residue so the record holds exactly the
        # daemon's lifetime metrics — bit-identical to the final
        # --metrics-out snapshot.
        from .obs import OBS as _OBS

        _OBS.reset()
        server.emit_obs()
    session.stop_hooks()
    snapshot = server.stats.snapshot(server.cache)
    cache = snapshot["cache"]
    print(
        f"drained: {snapshot['requests']} request(s), "
        f"{snapshot['cells_solved']} cell(s) solved, "
        f"{cache['hits']} cache hit(s), {snapshot['errors']} error(s)"
    )
    _emit_obs(
        args,
        session,
        algorithm="serve",
        instance={
            "host": args.host,
            "port": args.port,
            "socket": args.socket,
            "jobs": args.jobs,
            "batch_window": args.batch_window,
            "batch_max": args.batch_max,
            "cache_size": args.cache_size,
        },
        results=snapshot,
    )
    return 0


def _serve_client_main(argv: Sequence[str]) -> int:
    """``python -m repro serve-client``: one-shot client / load driver."""
    parser = argparse.ArgumentParser(
        prog="repro-cds serve-client",
        description=(
            "Talk to a running solve daemon: one solve, a control op "
            "(--ping/--stats/--shutdown), or a deterministic load run "
            "(--loadgen) that audits every response against the schema "
            "and the bit-identical cache contract."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help="daemon address: HOST:PORT or a Unix-socket path",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="socket timeout (default: 60)",
    )
    ops = parser.add_mutually_exclusive_group()
    ops.add_argument(
        "--ping", action="store_true", help="liveness probe, print the ack"
    )
    ops.add_argument(
        "--stats", action="store_true", help="print the daemon's metrics JSON"
    )
    ops.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to drain"
    )
    ops.add_argument(
        "--loadgen",
        action="store_true",
        help="drive the deterministic load generator (see --requests/--ns)",
    )
    parser.add_argument(
        "--n", type=_positive_int, default=None, metavar="N",
        help="solve one random connected UDG instance of this size",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="instance seed for --n (default: 0)",
    )
    parser.add_argument(
        "--side", type=float, default=None, metavar="L",
        help="deployment square side (default: density-preserving)",
    )
    parser.add_argument(
        "--algorithm", default="greedy",
        choices=sorted(_solver_registry()),
        help="construction algorithm (default: greedy)",
    )
    parser.add_argument(
        "--kernel", default="auto", choices=("auto", "indexed", "bitset", "array"),
        help="graph kernel for the kernelized solvers "
        "(auto picks by instance size)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ask the daemon to bypass its result cache for this request",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw response JSON instead of the summary line",
    )
    parser.add_argument(
        "--ns", default="60", metavar="N1,N2|LO:HI",
        help="loadgen: instance sizes (default: 60)",
    )
    parser.add_argument(
        "--seeds", default="0:8", metavar="S1,S2|LO:HI",
        help="loadgen: instance seeds (default: 0:8)",
    )
    parser.add_argument(
        "--requests", type=_positive_int, default=100, metavar="R",
        help="loadgen: offered requests (default: 100)",
    )
    parser.add_argument(
        "--concurrency", type=_positive_int, default=4, metavar="C",
        help="loadgen: concurrent client connections (default: 4)",
    )
    parser.add_argument(
        "--rng-seed", type=int, default=0, metavar="S",
        help="loadgen: seed of the request-mix draw (default: 0)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="loadgen: write the load report JSON to FILE",
    )
    args = parser.parse_args(argv)

    import json as _json

    from .serve import ServeClient, parse_address, request_sequence, run_load

    address = parse_address(args.connect)
    try:
        if args.loadgen:
            ns = _parse_int_list(args.ns, "--ns")
            seeds = _parse_int_list(args.seeds, "--seeds")
            sequence = request_sequence(
                ns,
                seeds,
                args.requests,
                algorithm=args.algorithm,
                kernel=args.kernel,
                rng_seed=args.rng_seed,
            )
            report = run_load(
                address,
                sequence,
                concurrency=args.concurrency,
                timeout=args.timeout,
            )
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    _json.dump(report, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"load report written to {args.out}")
            latency = report["latency_seconds"]
            print(
                f"{report['requests']} request(s) in "
                f"{report['elapsed_seconds']:.2f}s: "
                f"{report['requests_per_second']:.0f} req/s, "
                f"p50 {latency['p50'] * 1e3:.2f}ms, "
                f"p99 {latency['p99'] * 1e3:.2f}ms, "
                f"cache hit rate {report['server']['cache_hit_rate']:.0%}"
            )
            if not report["ok"]:
                print(
                    f"AUDIT FAILED: {report['errors']} error(s), "
                    f"{len(report['schema_violations'])} schema violation(s), "
                    f"{len(report['identity_violations'])} identity "
                    "violation(s)",
                    file=sys.stderr,
                )
                return 1
            return 0
        with ServeClient(address, timeout=args.timeout) as client:
            if args.ping:
                response = client.ping()
            elif args.stats:
                response = client.stats()
            elif args.shutdown:
                response = client.shutdown()
            else:
                if args.n is None:
                    print(
                        "nothing to do: give --n (solve) or one of "
                        "--ping/--stats/--shutdown/--loadgen",
                        file=sys.stderr,
                    )
                    return 2
                response = client.solve(
                    n=args.n,
                    seed=args.seed,
                    side=args.side,
                    algorithm=args.algorithm,
                    kernel=args.kernel,
                    cache=not args.no_cache,
                )
    except (OSError, ConnectionError) as exc:
        print(f"cannot reach daemon at {args.connect}: {exc}", file=sys.stderr)
        return 1
    if args.json or args.stats:
        print(_json.dumps(response, indent=2, sort_keys=True))
    elif response.get("status") == "error":
        error = response["error"]
        print(f"error: {error['type']}: {error['message']}", file=sys.stderr)
        return 1
    elif "result" in response:
        result = response["result"]
        print(
            f"{result['algorithm']}: |CDS|={result['cds_size']} "
            f"({result['dominators']} dominators + "
            f"{result['connectors']} connectors), "
            f"cached={response['cached']}, batch={response['batch']}, "
            f"{response['elapsed'] * 1e3:.2f}ms "
            f"[{response['fingerprint']}]"
        )
    else:
        print(f"{response.get('op', 'ok')}: {response.get('status')}")
    return 0 if response.get("status") == "ok" else 1


def _experiments_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cds",
        description=(
            "Reproduction experiments for 'Two-Phased Approximation "
            "Algorithms for Minimum CDS in Wireless Ad Hoc Networks' "
            "(Wan, Wang, Yao - ICDCS 2008).  See also the 'solve' "
            "subcommand for running algorithms on your own deployments."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids to run")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each result table as CSV into this directory",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "run experiments across N worker processes (output order and "
            "content are identical to a serial run; --trace/--stats-out/"
            "--events-out merge the per-worker instrumentation "
            "deterministically)"
        ),
    )
    _add_reliability_flags(parser, cell_noun="experiment")
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    registry = all_experiments()
    if args.list or (not args.experiments and not args.all):
        for key, (title, _) in sorted(registry.items()):
            print(f"{key:6s} {title}")
        return 0

    from .obs import OBS

    jobs = args.jobs
    session = _ObsSession(args)
    ids = sorted(registry) if args.all else args.experiments
    failed: list[str] = []
    ran: list[str] = []
    cell_failures = []
    if _reliability_requested(args):
        # Fault-isolated path: each experiment in its own process, with
        # retries/timeouts and the checkpoint ledger.  A crashing
        # experiment becomes a structured failure in the report instead
        # of killing the batch.
        from .experiments.harness import ExperimentResult
        from .experiments.parallel import run_experiments_resilient

        error = _validate_reliability_flags(args)
        if error:
            print(error, file=sys.stderr)
            return 2
        session.start()  # hooks in the parent record reliability notes
        try:
            with session.profiled():
                report = run_experiments_resilient(
                    ids,
                    jobs=jobs,
                    collect_obs=session.wanted,
                    policy=_retry_policy(args),
                    faults=_fault_plan(args),
                    checkpoint=args.checkpoint,
                    resume=args.resume,
                )
        except (KeyError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2
        session.stop_hooks()
        results = []
        for outcome in report.outcomes:
            if not outcome.ok:
                continue
            payload = outcome.result
            results.append(ExperimentResult.from_json_obj(payload["result"]))
            if session.wanted and payload.get("state"):
                OBS.merge_state(payload["state"])
        cell_failures = report.failures
        if not report.ok:
            print(report.render_failures(), file=sys.stderr)
    elif jobs > 1:
        # Workers capture their own registries; the parent merges them
        # (counters sum; timers merge total/count/max) so the report,
        # the RunRecord and the event log cover every experiment.
        # Per-span *nesting* under workers comes from the merged event
        # log (--events-out), not from the merged timers — a merged
        # timer keeps totals, not parent/child structure.
        from .experiments.parallel import run_experiments_parallel

        session.start(enable_hooks=False)
        try:
            with session.profiled():
                outcomes = run_experiments_parallel(
                    ids,
                    jobs=jobs,
                    collect_obs=session.wanted,
                    collect_events=bool(args.events_out),
                    mem_trace=args.mem_trace,
                )
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        if session.wanted:
            results = []
            worker_logs = []
            for result, state, events in outcomes:
                results.append(result)
                OBS.merge_state(state)
                if events is not None:
                    worker_logs.append(events)
            if worker_logs:
                from .obs.events import merge_events

                session.merged_events = merge_events(worker_logs)
        else:
            results = outcomes
    else:
        session.start()
        results = []
        with session.profiled():
            for experiment_id in ids:
                try:
                    fn = get_experiment(experiment_id)
                except KeyError as exc:
                    print(exc, file=sys.stderr)
                    return 2
                with OBS.time(f"experiment.{fn.experiment_id}"):
                    results.append(fn())
        session.stop_hooks()
    for result in results:
        ran.append(result.experiment_id)
        print(result.render())
        print()
        if args.csv:
            _write_csv(result, args.csv)
        if not result.passed:
            failed.append(result.experiment_id)
    _emit_obs(
        args,
        session,
        algorithm="experiments" if len(ran) != 1 else f"experiment:{ran[0]}",
        instance={"experiments": ran},
        results={"ran": len(ran), "failed": failed},
    )
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    if cell_failures:
        return 1
    print(f"all {len(ids)} experiment(s) passed")
    return 0


def _add_reliability_flags(
    parser: argparse.ArgumentParser, cell_noun: str = "cell"
) -> None:
    """The fault-isolation/checkpoint flags shared by sweep-shaped modes."""
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=f"re-run a failed {cell_noun} up to N extra times "
        "(deterministic backoff; see --backoff)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=f"per-attempt wall-clock budget; an overdue {cell_noun} "
        "worker is terminated and counted as a timeout failure",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base retry delay, doubled per attempt with a jitter "
        "seeded per cell (reruns sleep the identical schedule)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="journal completed cells to this JSONL ledger "
        "(repro.reliability/checkpoint/v1), fsynced per cell",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="load --checkpoint first and run only the missing cells; "
        "merged results and counters are bit-identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos drill: deterministically inject a fault at trace "
        "sites, e.g. 'site=greedy.phase2;action=kill;scope=*seed=1*' "
        "(repeatable; see docs/robustness.md)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for --inject-fault decisions",
    )


def _reliability_requested(args) -> bool:
    return bool(
        args.checkpoint
        or args.resume
        or args.retries
        or args.cell_timeout is not None
        or args.inject_fault
    )


def _validate_reliability_flags(args) -> str | None:
    if args.resume and not args.checkpoint:
        return "--resume requires --checkpoint FILE"
    if args.retries < 0:
        return f"--retries must be >= 0 (got {args.retries})"
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        return f"--cell-timeout must be > 0 (got {args.cell_timeout})"
    return None


def _retry_policy(args):
    from .reliability import RetryPolicy

    return RetryPolicy(
        retries=args.retries,
        timeout=args.cell_timeout,
        backoff=args.backoff,
        seed=args.fault_seed,
    )


def _fault_plan(args):
    if not args.inject_fault:
        return None
    from .reliability import FaultPlan, parse_fault_spec

    return FaultPlan(
        seed=args.fault_seed,
        specs=tuple(parse_fault_spec(spec) for spec in args.inject_fault),
    )


def _parse_int_list(text: str, flag: str) -> list[int]:
    """``"20,40"`` -> ``[20, 40]``; ``"0:5"`` -> ``[0, 1, 2, 3, 4]``."""
    try:
        if ":" in text:
            lo, _, hi = text.partition(":")
            values = list(range(int(lo), int(hi)))
        else:
            values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(
            f"{flag} expects comma-separated integers or LO:HI, got {text!r}"
        ) from None
    if not values:
        raise ValueError(f"{flag} selected no values (got {text!r})")
    return values


def _sweep_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cds sweep",
        description=(
            "Run a CDS algorithm over an (n x seed) grid of random "
            "connected UDGs with fault isolation, retries, per-cell "
            "timeouts and checkpoint/resume (docs/robustness.md).  "
            "Cell results and merged counters are deterministic per "
            "seed, whatever --jobs is and however often the sweep was "
            "interrupted and resumed."
        ),
    )
    parser.add_argument(
        "--ns",
        required=True,
        metavar="N1,N2|LO:HI",
        help="instance sizes of the grid",
    )
    parser.add_argument(
        "--seeds",
        default="0",
        metavar="S1,S2|LO:HI",
        help="instance seeds per size (default: just seed 0)",
    )
    parser.add_argument(
        "--side",
        type=float,
        default=None,
        metavar="L",
        help="deployment square side (default: density-preserving per n)",
    )
    parser.add_argument(
        "--algorithm",
        default="greedy",
        choices=sorted(_solver_registry()),
        help="construction algorithm (default: greedy)",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "indexed", "bitset", "array"),
        help="graph kernel for the kernelized solvers (results are "
        "identical under every kernel)",
    )
    parser.add_argument(
        "--m",
        type=_positive_int,
        default=None,
        metavar="N",
        help="coverage multiplicity for the fault-tolerant solvers "
        "(mfold-greedy, mfold-2conn)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="cells running concurrently (each in its own process)",
    )
    _add_reliability_flags(parser)
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    from .experiments.harness import Table
    from .experiments.parallel import solve_cells_resilient, sweep_cells
    from .obs import OBS

    error = _validate_reliability_flags(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        ns = _parse_int_list(args.ns, "--ns")
        seeds = _parse_int_list(args.seeds, "--seeds")
        plan = _fault_plan(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    cells = sweep_cells(ns, seeds, side=args.side)
    kernel = None if args.kernel == "auto" else args.kernel

    session = _ObsSession(args)
    session.start()
    try:
        with session.profiled():
            report = solve_cells_resilient(
                cells,
                algorithm=args.algorithm,
                jobs=args.jobs,
                kernel=kernel,
                m=args.m,
                policy=_retry_policy(args),
                faults=plan,
                checkpoint=args.checkpoint,
                resume=args.resume,
            )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    session.stop_hooks()

    table = Table(
        title=f"sweep: {args.algorithm} (kernel={args.kernel})",
        headers=("n", "seed", "cds", "dominators", "connectors", "attempts"),
    )
    for outcome in report.outcomes:
        if not outcome.ok:
            continue
        summary = outcome.result
        table.add_row(
            summary["n"],
            summary["seed"],
            summary["cds_size"],
            summary["dominators"],
            summary["connectors"],
            outcome.attempts,
        )
        if session.wanted:
            # Cell counters merge by the registry's rules (sums; mem.*
            # peaks by max), so --trace/--stats-out report the sweep's
            # merged operational counts — bit-identical however the
            # sweep was scheduled, interrupted or resumed.
            OBS.merge_state({"counters": summary["counters"]})
    print(table.render())
    if not report.ok:
        print(report.render_failures(), file=sys.stderr)
    print(
        f"{len(report.results)}/{len(cells)} cell(s) ok "
        f"({report.resumed} resumed, {report.retries} retried)"
    )
    _emit_obs(
        args,
        session,
        algorithm=f"sweep:{args.algorithm}",
        instance={
            "ns": ns,
            "seeds": seeds,
            "side": args.side,
            "kernel": args.kernel,
            "cells": len(cells),
        },
        results={
            "ok": len(report.results),
            "failed": len(report.failures),
            "resumed": report.resumed,
            "retries": report.retries,
        },
    )
    return 0 if report.ok else 1


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect instrumentation and print the counter/timer report",
    )
    parser.add_argument(
        "--stats-out",
        metavar="FILE",
        help="write a repro.obs RunRecord (JSON) describing this run",
    )
    parser.add_argument(
        "--events-out",
        metavar="FILE",
        help=(
            "write the structured span log (repro.obs/event/v1 JSONL): "
            "nested begin/end events with timestamps and counter deltas"
        ),
    )
    parser.add_argument(
        "--mem-trace",
        action="store_true",
        help=(
            "track per-span peak memory via tracemalloc; mem.* counters "
            "appear in the --trace report and the RunRecord"
        ),
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        help="cProfile the run and write pstats to FILE (e.g. run.pstats)",
    )


class _ObsSession:
    """Per-invocation observability state: hooks, events, profiler.

    Ties the opt-in flags to the shared ``OBS`` registry for exactly
    one CLI run: ``start()`` enables the registry and attaches the
    event log / memory tracker (serial mode), ``profiled()`` wraps the
    run in cProfile when asked, and ``_emit_obs`` drains everything.
    In parallel mode hooks run inside the workers instead
    (``enable_hooks=False``) and the merged event stream is assigned to
    :attr:`merged_events` by the caller.
    """

    def __init__(self, args):
        self.args = args
        self.wanted = bool(
            args.trace or args.stats_out or args.events_out or args.mem_trace
        )
        self.event_log = None
        self.merged_events = None
        self._mem_cm = None

    def start(self, enable_hooks: bool = True) -> None:
        if not self.wanted:
            return
        from .obs import OBS

        OBS.reset()
        OBS.enable()
        if not enable_hooks:
            return
        if self.args.events_out:
            from .obs.events import EventLog

            self.event_log = EventLog(OBS)
            OBS.add_hook(self.event_log)
        if self.args.mem_trace:
            from .obs.profile import mem_tracing

            self._mem_cm = mem_tracing(OBS)
            self._mem_cm.__enter__()

    def stop_hooks(self) -> None:
        """Detach hooks (before reporting, so the drain itself is quiet)."""
        from .obs import OBS

        if self._mem_cm is not None:
            self._mem_cm.__exit__(None, None, None)
            self._mem_cm = None
        if self.event_log is not None:
            OBS.remove_hook(self.event_log)

    def profiled(self):
        """Context manager for the run body: cProfile when requested."""
        if self.args.profile_out:
            from .obs.profile import profile_to

            return profile_to(self.args.profile_out)
        from contextlib import nullcontext

        return nullcontext()

    @property
    def events(self) -> list | None:
        if self.merged_events is not None:
            return self.merged_events
        if self.event_log is not None:
            return self.event_log.events
        return None


def _emit_obs(args, session: _ObsSession, *, algorithm: str, instance: dict,
              results: dict, seed: int | None = None) -> None:
    """Drain the session: report, RunRecord, event log, profile note."""
    if args.profile_out:
        print(f"profile written to {args.profile_out}")
    if not session.wanted:
        return
    from . import __version__
    from .obs import OBS, RunRecord, render_report

    if args.trace:
        print(render_report(OBS))
    if args.stats_out:
        record = RunRecord.from_registry(
            OBS,
            algorithm=algorithm,
            instance=instance,
            seed=seed,
            results=results,
            meta={"argv": list(sys.argv[1:]), "version": __version__},
        )
        record.write(args.stats_out)
        print(f"run record written to {args.stats_out}")
    if args.events_out and session.events is not None:
        from .obs.events import write_events

        write_events(session.events, args.events_out)
        print(f"event log written to {args.events_out}")
    OBS.disable()


def _solve_main(argv: Sequence[str]) -> int:
    solvers = _solver_registry()
    parser = argparse.ArgumentParser(
        prog="repro-cds solve",
        description="Construct a CDS backbone for a deployment CSV (x,y per row).",
    )
    parser.add_argument("deployment", help="CSV file with an 'x,y' header")
    parser.add_argument(
        "--algorithm",
        default="greedy",
        choices=sorted(solvers),
        help="construction algorithm (default: greedy — the paper's Section IV)",
    )
    parser.add_argument(
        "--prune", action="store_true", help="minimalize the result afterwards"
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "indexed", "bitset", "array"),
        help=(
            "graph kernel for the solver's hot loops: 'auto' (default) "
            "picks by algorithm and instance size, 'indexed' forces the "
            "CSR arrays, 'bitset' the neighborhood bitmasks, 'array' "
            "the vectorized numpy buffers; results are identical under "
            "every kernel"
        ),
    )
    parser.add_argument(
        "--m",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "coverage multiplicity for the fault-tolerant solvers "
            "(mfold-greedy, mfold-2conn): every node outside the "
            "backbone gets N distinct dominators (default: the "
            "solver's own default, 2)"
        ),
    )
    parser.add_argument("--out", metavar="FILE", help="write the result as JSON")
    parser.add_argument(
        "--viz", action="store_true", help="print a terminal map of the backbone"
    )
    parser.add_argument(
        "--ratio",
        action="store_true",
        help="also report |CDS|/gamma_c (exact for small n, else a lower bound)",
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    from .analysis.ratios import estimate_gamma_c
    from .cds.prune import prune_result
    from .graphs.generators import largest_component_udg
    from .graphs.traversal import is_connected
    from .graphs.udg import unit_disk_graph
    from .io import load_points, save_result
    from .obs import OBS

    session = _ObsSession(args)
    session.start()

    try:
        points = load_points(args.deployment)
    except (OSError, ValueError) as exc:
        print(f"cannot read deployment: {exc}", file=sys.stderr)
        return 2
    if not points:
        print("deployment is empty", file=sys.stderr)
        return 2
    graph = unit_disk_graph(points)
    if not is_connected(graph):
        kept, graph = largest_component_udg(points)
        print(
            f"note: deployment disconnected; using the largest component "
            f"({len(graph)} of {len(points)} nodes)",
        )
        points = kept

    solver = solvers[args.algorithm]
    solver_params = inspect.signature(solver).parameters
    solver_kwargs = {}
    if "kernel" in solver_params:
        solver_kwargs["kernel"] = args.kernel
    elif args.kernel != "auto":
        print(
            f"--kernel is not supported by algorithm {args.algorithm!r} "
            "(only the kernelized solvers: waf, greedy)",
            file=sys.stderr,
        )
        return 2
    if args.m is not None:
        if "m" not in solver_params:
            print(
                f"--m is not supported by algorithm {args.algorithm!r} "
                "(only the fault-tolerant solvers: mfold-greedy, "
                "mfold-2conn)",
                file=sys.stderr,
            )
            return 2
        solver_kwargs["m"] = args.m
    with session.profiled(), OBS.time("solve.total"):
        try:
            result = solver(graph, **solver_kwargs)
        except ValueError as exc:
            # e.g. mfold-2conn on a deployment that is not 2-connected:
            # no (2,m)-CDS exists, which is an input property, not a bug.
            print(f"{args.algorithm}: {exc}", file=sys.stderr)
            return 2
    if not result.is_valid(graph):
        print(f"{args.algorithm} produced an invalid CDS (bug)", file=sys.stderr)
        return 1
    if args.prune:
        result = prune_result(graph, result)

    print(f"nodes: {len(graph)}   links: {graph.edge_count()}")
    print(f"algorithm: {result.algorithm}   backbone size: {result.size}")
    if args.ratio:
        gamma = estimate_gamma_c(graph)
        kind = "exact" if gamma.exact else "lower bound"
        print(
            f"gamma_c ({kind}, {gamma.method}): {gamma.value}   "
            f"ratio: {result.size / gamma.value:.3f}"
        )
    if args.viz:
        from .viz import render_backbone_legend, render_deployment

        print(render_deployment(points, result, width=60))
        print(render_backbone_legend())
    if args.out:
        save_result(result, args.out)
        print(f"result written to {args.out}")
    session.stop_hooks()
    _emit_obs(
        args,
        session,
        algorithm=result.algorithm,
        instance={
            "source": args.deployment,
            "nodes": len(graph),
            "edges": graph.edge_count(),
        },
        results={
            "cds_size": result.size,
            "dominators": len(result.dominators),
            "connectors": len(result.connectors),
        },
    )
    return 0


def _write_csv(result, directory: str) -> None:
    """Dump each table of an experiment result as a CSV file."""
    from pathlib import Path

    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for i, table in enumerate(result.tables):
        name = f"{result.experiment_id.lower()}_{i}.csv"
        (out / name).write_text(table.to_csv())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
