"""Command-line entry point: ``python -m repro`` / ``repro-cds``.

Two modes:

* **experiments** (default) — run the registered paper-artifact
  experiments and print their tables::

      python -m repro --list          # show all experiment ids
      python -m repro T8 T10          # run two experiments
      python -m repro --all --csv out # run everything, dump CSVs
      python -m repro --all --jobs 4  # same, across 4 worker processes

* **solve** — run a CDS algorithm on a deployment CSV (``x,y`` header,
  one point per row; see :mod:`repro.io`)::

      python -m repro solve deploy.csv --algorithm greedy --viz
      python -m repro solve deploy.csv --algorithm waf --prune \
          --out backbone.json

Both modes accept ``--trace`` (print the instrumentation report after
the run) and ``--stats-out FILE`` (write a schema-checked
:class:`repro.obs.RunRecord` JSON — see ``docs/observability.md``)::

      python -m repro T8 --stats-out rec.json
      python -m repro solve deploy.csv --algorithm greedy --trace \
          --stats-out rec.json
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

from .experiments.harness import all_experiments, get_experiment

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _solver_registry():
    from .baselines import ALL_BASELINES
    from .cds import greedy_connector_cds, steiner_cds, waf_cds

    solvers = {
        "waf": waf_cds,
        "greedy": greedy_connector_cds,
        "steiner": steiner_cds,
    }
    solvers.update(ALL_BASELINES)
    return solvers


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "solve":
        return _solve_main(args[1:])
    return _experiments_main(args)


def _experiments_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cds",
        description=(
            "Reproduction experiments for 'Two-Phased Approximation "
            "Algorithms for Minimum CDS in Wireless Ad Hoc Networks' "
            "(Wan, Wang, Yao - ICDCS 2008).  See also the 'solve' "
            "subcommand for running algorithms on your own deployments."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids to run")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each result table as CSV into this directory",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "run experiments across N worker processes (output order and "
            "content are identical to a serial run; forced to 1 when "
            "--trace/--stats-out need a merged instrumentation report)"
        ),
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    registry = all_experiments()
    if args.list or (not args.experiments and not args.all):
        for key, (title, _) in sorted(registry.items()):
            print(f"{key:6s} {title}")
        return 0

    from .obs import OBS

    jobs = args.jobs
    if jobs > 1 and (args.trace or args.stats_out):
        print(
            "note: --trace/--stats-out need in-process counters; "
            "running with --jobs 1",
            file=sys.stderr,
        )
        jobs = 1

    if args.trace or args.stats_out:
        OBS.reset()
        OBS.enable()

    ids = sorted(registry) if args.all else args.experiments
    failed: list[str] = []
    ran: list[str] = []
    if jobs > 1:
        from .experiments.parallel import run_experiments_parallel

        try:
            results = run_experiments_parallel(ids, jobs=jobs)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        results = []
        for experiment_id in ids:
            try:
                fn = get_experiment(experiment_id)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
            with OBS.time(f"experiment.{fn.experiment_id}"):
                results.append(fn())
    for result in results:
        ran.append(result.experiment_id)
        print(result.render())
        print()
        if args.csv:
            _write_csv(result, args.csv)
        if not result.passed:
            failed.append(result.experiment_id)
    _emit_obs(
        args,
        algorithm="experiments" if len(ran) != 1 else f"experiment:{ran[0]}",
        instance={"experiments": ran},
        results={"ran": len(ran), "failed": failed},
    )
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all {len(ids)} experiment(s) passed")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect instrumentation and print the counter/timer report",
    )
    parser.add_argument(
        "--stats-out",
        metavar="FILE",
        help="write a repro.obs RunRecord (JSON) describing this run",
    )


def _emit_obs(args, *, algorithm: str, instance: dict, results: dict,
              seed: int | None = None) -> None:
    """Print the ``--trace`` report and/or write the ``--stats-out`` record."""
    if not (args.trace or args.stats_out):
        return
    from . import __version__
    from .obs import OBS, RunRecord, render_report

    if args.trace:
        print(render_report(OBS))
    if args.stats_out:
        record = RunRecord.from_registry(
            OBS,
            algorithm=algorithm,
            instance=instance,
            seed=seed,
            results=results,
            meta={"argv": list(sys.argv[1:]), "version": __version__},
        )
        record.write(args.stats_out)
        print(f"run record written to {args.stats_out}")
    OBS.disable()


def _solve_main(argv: Sequence[str]) -> int:
    solvers = _solver_registry()
    parser = argparse.ArgumentParser(
        prog="repro-cds solve",
        description="Construct a CDS backbone for a deployment CSV (x,y per row).",
    )
    parser.add_argument("deployment", help="CSV file with an 'x,y' header")
    parser.add_argument(
        "--algorithm",
        default="greedy",
        choices=sorted(solvers),
        help="construction algorithm (default: greedy — the paper's Section IV)",
    )
    parser.add_argument(
        "--prune", action="store_true", help="minimalize the result afterwards"
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "indexed", "bitset"),
        help=(
            "graph kernel for the solver's hot loops: 'auto' (default) "
            "picks by algorithm and instance size, 'indexed' forces the "
            "CSR arrays, 'bitset' the neighborhood bitmasks; results "
            "are identical under every kernel"
        ),
    )
    parser.add_argument("--out", metavar="FILE", help="write the result as JSON")
    parser.add_argument(
        "--viz", action="store_true", help="print a terminal map of the backbone"
    )
    parser.add_argument(
        "--ratio",
        action="store_true",
        help="also report |CDS|/gamma_c (exact for small n, else a lower bound)",
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    from .analysis.ratios import estimate_gamma_c
    from .cds.prune import prune_result
    from .graphs.generators import largest_component_udg
    from .graphs.traversal import is_connected
    from .graphs.udg import unit_disk_graph
    from .io import load_points, save_result
    from .obs import OBS

    if args.trace or args.stats_out:
        OBS.reset()
        OBS.enable()

    try:
        points = load_points(args.deployment)
    except (OSError, ValueError) as exc:
        print(f"cannot read deployment: {exc}", file=sys.stderr)
        return 2
    if not points:
        print("deployment is empty", file=sys.stderr)
        return 2
    graph = unit_disk_graph(points)
    if not is_connected(graph):
        kept, graph = largest_component_udg(points)
        print(
            f"note: deployment disconnected; using the largest component "
            f"({len(graph)} of {len(points)} nodes)",
        )
        points = kept

    solver = solvers[args.algorithm]
    solver_kwargs = {}
    if "kernel" in inspect.signature(solver).parameters:
        solver_kwargs["kernel"] = args.kernel
    elif args.kernel != "auto":
        print(
            f"--kernel is not supported by algorithm {args.algorithm!r} "
            "(only the kernelized solvers: waf, greedy)",
            file=sys.stderr,
        )
        return 2
    with OBS.time("solve.total"):
        result = solver(graph, **solver_kwargs)
    if not result.is_valid(graph):
        print(f"{args.algorithm} produced an invalid CDS (bug)", file=sys.stderr)
        return 1
    if args.prune:
        result = prune_result(graph, result)

    print(f"nodes: {len(graph)}   links: {graph.edge_count()}")
    print(f"algorithm: {result.algorithm}   backbone size: {result.size}")
    if args.ratio:
        gamma = estimate_gamma_c(graph)
        kind = "exact" if gamma.exact else "lower bound"
        print(
            f"gamma_c ({kind}, {gamma.method}): {gamma.value}   "
            f"ratio: {result.size / gamma.value:.3f}"
        )
    if args.viz:
        from .viz import render_backbone_legend, render_deployment

        print(render_deployment(points, result, width=60))
        print(render_backbone_legend())
    if args.out:
        save_result(result, args.out)
        print(f"result written to {args.out}")
    _emit_obs(
        args,
        algorithm=result.algorithm,
        instance={
            "source": args.deployment,
            "nodes": len(graph),
            "edges": graph.edge_count(),
        },
        results={
            "cds_size": result.size,
            "dominators": len(result.dominators),
            "connectors": len(result.connectors),
        },
    )
    return 0


def _write_csv(result, directory: str) -> None:
    """Dump each table of an experiment result as a CSV file."""
    from pathlib import Path

    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for i, table in enumerate(result.tables):
        name = f"{result.experiment_id.lower()}_{i}.csv"
        (out / name).write_text(table.to_csv())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
