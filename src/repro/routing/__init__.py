"""Applications on top of the CDS: backbone routing."""

from .backbone import BackboneRouter

__all__ = ["BackboneRouter"]
