"""Routing over a CDS backbone.

The original motivation for minimum CDS in ad hoc networks ([2] in the
paper) is routing: keep routing state only on backbone nodes and route
every packet *via* the backbone — source to an adjacent dominator,
along the backbone, and one final hop to the target.  A smaller
backbone means less routing state and fewer control messages, at the
price of path *stretch* relative to true shortest paths.

:class:`BackboneRouter` implements that scheme over any CDS and
measures the stretch, which the churn example tracks as the backbone is
maintained over time.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, TypeVar

from ..graphs.graph import Graph
from ..graphs.properties import is_connected_dominating_set
from ..graphs.traversal import shortest_path_lengths

N = TypeVar("N", bound=Hashable)

__all__ = ["BackboneRouter"]


class BackboneRouter:
    """Shortest-path routing constrained to a CDS backbone.

    Args:
        graph: the communication topology.
        backbone: a CDS of ``graph`` (validated at construction).

    Raises:
        ValueError: if ``backbone`` is not a CDS of ``graph``.
    """

    def __init__(self, graph: Graph[N], backbone: Iterable[N]):
        self._graph = graph
        self._backbone = frozenset(backbone)
        if not is_connected_dominating_set(graph, self._backbone):
            raise ValueError("backbone is not a connected dominating set")

    @property
    def backbone(self) -> frozenset:
        return self._backbone

    def route(self, source: N, target: N) -> list[N]:
        """A source-to-target path using only backbone intermediates.

        The returned path starts at ``source`` and ends at ``target``;
        every interior node is a backbone node.  Direct delivery is used
        when the endpoints are adjacent (no backbone detour).

        Raises:
            KeyError: if either endpoint is not in the graph.
        """
        if source not in self._graph:
            raise KeyError(f"unknown source {source!r}")
        if target not in self._graph:
            raise KeyError(f"unknown target {target!r}")
        if source == target:
            return [source]
        if self._graph.has_edge(source, target):
            return [source, target]
        interior = self._shortest_via_backbone(source, target)
        if interior is None:
            raise AssertionError("backbone routing failed on a valid CDS")
        return interior

    def _shortest_via_backbone(self, source: N, target: N) -> list[N] | None:
        """BFS where interior hops are restricted to backbone nodes."""
        parent: dict[N, N] = {}
        seen = {source}
        queue: deque[N] = deque([source])
        while queue:
            u = queue.popleft()
            # Only the source and backbone nodes may forward.
            if u != source and u not in self._backbone:
                continue
            for v in self._graph.neighbors(u):
                if v in seen:
                    continue
                seen.add(v)
                parent[v] = u
                if v == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return path[::-1]
                queue.append(v)
        return None

    def stretch(self, source: N, target: N) -> float:
        """Backbone route length over true shortest-path length.

        1.0 means no detour; the CDS literature's rule of thumb is a
        small constant stretch for MIS-based backbones.
        """
        if source == target:
            return 1.0
        true = shortest_path_lengths(self._graph, source).get(target)
        if true is None:
            raise ValueError("endpoints are not connected")
        routed = len(self.route(source, target)) - 1
        return routed / true

    def mean_stretch(self, pairs: Iterable[tuple[N, N]]) -> float:
        """Average stretch over the given endpoint pairs."""
        values = [self.stretch(s, t) for s, t in pairs]
        if not values:
            raise ValueError("no pairs given")
        return sum(values) / len(values)

    def load_profile(self, flows: Iterable[tuple[N, N]]) -> dict:
        """Forwarding load per node for a set of unicast flows.

        Each flow is routed with :meth:`route`; every node on the path
        except the final receiver counts one forwarding.  The profile
        quantifies the concentration a small backbone implies — the
        motivation for energy rotation (see :mod:`repro.energy`).

        Returns:
            node -> forwarding count, for every node with load > 0.
        """
        load: dict = {}
        for source, target in flows:
            path = self.route(source, target)
            for hop in path[:-1]:
                load[hop] = load.get(hop, 0) + 1
        return load
