"""Guarded imports for optional (dev-extra) dependencies.

The core package depends on numpy alone; everything else — scipy's
``cKDTree`` fast path in the vectorized UDG builder, networkx in the
converters — is an accelerator or a convenience that the code must
*gate*, not require.  This module is the one place that gating lives,
so every soft import fails the same way: with an error that names the
missing distribution and the extra that installs it.

Usage::

    from repro._optional import optional_module

    scipy_spatial = optional_module("scipy.spatial")
    if scipy_spatial is not None:
        tree = scipy_spatial.cKDTree(coords)   # fast path
    else:
        ...                                    # numpy fallback

    # Or, for features that cannot degrade:
    spatial = require_module("scipy.spatial", feature="the cKDTree fast path")
"""

from __future__ import annotations

import importlib
from types import ModuleType

__all__ = ["MissingDependencyError", "optional_module", "require_module"]

#: distribution (pip name) and install extra per optional top-level module.
_EXTRAS: dict[str, tuple[str, str]] = {
    "scipy": ("scipy", "dev"),
    "networkx": ("networkx", "dev"),
    "hypothesis": ("hypothesis", "dev"),
    "pytest": ("pytest", "dev"),
}

#: memoized import results; ``False`` marks a known-missing module.
_CACHE: dict[str, ModuleType | None] = {}


class MissingDependencyError(ImportError):
    """An optional dependency is required for the requested feature."""


def optional_module(name: str) -> ModuleType | None:
    """Import ``name`` if installed, else return ``None`` (memoized).

    Only :class:`ImportError` for the module itself (or its parents) is
    swallowed — a broken installation that raises anything else still
    surfaces.  Pass dotted names (``"scipy.spatial"``) to get the
    submodule directly.
    """
    cached = _CACHE.get(name, False)
    if cached is not False:
        return cached
    try:
        module: ModuleType | None = importlib.import_module(name)
    except ImportError:
        module = None
    _CACHE[name] = module
    return module


def require_module(name: str, feature: str | None = None) -> ModuleType:
    """Import ``name`` or raise a :class:`MissingDependencyError` that
    names the distribution and the extra installing it.

    Args:
        name: dotted module path to import.
        feature: optional human description of what needed it, included
            in the error so the user knows what they asked for.

    Raises:
        MissingDependencyError: if the module is not installed.
    """
    module = optional_module(name)
    if module is not None:
        return module
    top = name.partition(".")[0]
    dist, extra = _EXTRAS.get(top, (top, "dev"))
    wanted = f" (needed for {feature})" if feature else ""
    raise MissingDependencyError(
        f"optional dependency {dist!r} is not installed{wanted}; "
        f'install it with `pip install "repro[{extra}]"` or `pip install {dist}`'
    )
