#!/usr/bin/env python3
"""Density sweep: backbone sizes as the network gets denser.

Sweeps the mean node degree at fixed n and prints, per density, the
mean CDS size of the paper's two algorithms, the Steiner variant and
two baselines, plus the exact optimum where affordable.  The expected
shape: all CDS sizes *shrink* as density grows (fewer dominators cover
more), the greedy-connector algorithm tracks or beats WAF everywhere,
and everything stays far below the worst-case bounds.

Usage::

    python examples/density_sweep.py [n] [seeds]
"""

import math
import sys

from repro.analysis import estimate_gamma_c, summarize
from repro.baselines import guha_khuller_cds, wu_li_cds
from repro.cds import greedy_connector_cds, steiner_cds, waf_cds
from repro.graphs import random_connected_udg

ALGORITHMS = {
    "waf": waf_cds,
    "greedy": greedy_connector_cds,
    "steiner": steiner_cds,
    "guha-khuller": guha_khuller_cds,
    "wu-li": wu_li_cds,
}


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    header = f"{'degree':>7}" + "".join(f"{name:>14}" for name in ALGORITHMS)
    header += f"{'gamma_c*':>10}"
    print(f"mean CDS size, n = {n}, {seeds} seeds per density")
    print(header)
    print("-" * len(header))

    for mean_degree in (4.5, 6.0, 8.0, 11.0, 15.0):
        side = math.sqrt(math.pi * n / mean_degree)
        sizes = {name: [] for name in ALGORITHMS}
        gammas = []
        for seed in range(seeds):
            _, graph = random_connected_udg(n, side, seed=seed)
            gamma = estimate_gamma_c(graph, exact_node_limit=30)
            gammas.append(gamma.value)
            for name, algorithm in ALGORITHMS.items():
                result = algorithm(graph).validate(graph)
                sizes[name].append(result.size)
        row = f"{mean_degree:>7.1f}"
        for name in ALGORITHMS:
            row += f"{summarize(sizes[name]).mean:>14.1f}"
        row += f"{summarize(gammas).mean:>10.1f}"
        print(row)

    print("\n(gamma_c* is exact for n <= 30, else the Corollary 7 lower bound)")


if __name__ == "__main__":
    main()
