#!/usr/bin/env python3
"""Maintaining a CDS backbone in a mobile ad hoc network under churn.

The paper constructs the backbone once; real ad hoc networks churn.
This example simulates nodes joining and leaving a deployment while
:class:`repro.cds.DynamicCDS` keeps the backbone valid with local
repairs, and reports over time:

* the maintained backbone size vs a fresh reconstruction;
* the number and kind of repairs;
* routing stretch over the maintained backbone.

Usage::

    python examples/mobile_network_churn.py [n] [steps] [seed]
"""

import random
import sys

from repro.cds import DynamicCDS
from repro.geometry import Point
from repro.graphs import random_connected_udg
from repro.routing import BackboneRouter


def churn_step(dynamic: DynamicCDS, rng: random.Random) -> str:
    """One churn event: a leave or a join near an existing node."""
    if rng.random() < 0.5 and len(dynamic.graph) > 8:
        victim = rng.choice(sorted(dynamic.graph.nodes()))
        try:
            stats = dynamic.remove_node(victim)
            return f"leave ({stats.action})"
        except ValueError:
            return "leave skipped (would disconnect)"
    base = rng.choice(sorted(dynamic.graph.nodes()))
    new = Point(base.x + rng.uniform(-0.8, 0.8), base.y + rng.uniform(-0.8, 0.8))
    if new in dynamic.graph:
        return "join skipped (duplicate)"
    in_range = [v for v in dynamic.graph.nodes() if v.distance_to(new) <= 1.0]
    if not in_range:
        return "join skipped (isolated)"
    stats = dynamic.add_node(new, in_range)
    return f"join ({stats.action})"


def mean_stretch(dynamic: DynamicCDS, rng: random.Random, pairs: int = 15) -> float:
    router = BackboneRouter(dynamic.graph, dynamic.backbone)
    nodes = sorted(dynamic.graph.nodes())
    sampled = [tuple(rng.sample(nodes, 2)) for _ in range(pairs)]
    return router.mean_stretch(sampled)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    _, graph = random_connected_udg(n, (3.1416 * n / 6.0) ** 0.5, seed=seed)
    dynamic = DynamicCDS(graph, rebuild_factor=1.6)
    rng = random.Random(seed)

    print(f"start: {len(dynamic.graph)} nodes, backbone {dynamic.size}")
    print(f"{'step':>5} {'nodes':>6} {'backbone':>9} {'fresh':>6} "
          f"{'slack':>6} {'stretch':>8}  event")
    for step in range(1, steps + 1):
        event = churn_step(dynamic, rng)
        assert dynamic.is_valid(), "maintenance invariant broken"
        if step % 10 == 0:
            slack = dynamic.churn_slack()
            fresh = dynamic.size - slack
            stretch = mean_stretch(dynamic, rng)
            print(f"{step:>5} {len(dynamic.graph):>6} {dynamic.size:>9} "
                  f"{fresh:>6} {slack:>6} {stretch:>8.2f}  {event}")

    print(f"\nrepairs: {dynamic.repair_count}, "
          f"automatic rebuilds: {dynamic.rebuild_count}")
    print("backbone stayed a valid CDS through every event")


if __name__ == "__main__":
    main()
