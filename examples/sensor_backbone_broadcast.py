#!/usr/bin/env python3
"""Sensor-network broadcast over a CDS backbone vs blind flooding.

The motivating application from the paper's introduction: a CDS acts as
a virtual backbone, so a network-wide broadcast only needs the backbone
nodes to retransmit.  This example builds a clustered sensor
deployment, constructs the backbone with the paper's Section IV
algorithm, and compares transmission counts:

* blind flooding — every node retransmits once;
* backbone broadcast — only CDS nodes retransmit (still reaches all).

Both are executed on the synchronous radio simulator, so the numbers
are measured, not estimated.

Usage::

    python examples/sensor_backbone_broadcast.py [n] [seed]
"""

import sys

from repro.cds import greedy_connector_cds
from repro.distributed import Context, Message, NodeProcess, Simulator
from repro.experiments.instances import int_labeled
from repro.graphs import clustered_points, largest_component_udg


class FloodNode(NodeProcess):
    """Blind flooding: rebroadcast the first copy heard."""

    def __init__(self, node_id, source, relays=None):
        super().__init__(node_id)
        self.source = source
        self.got_message = node_id == source
        self.relays = relays  # None = everyone relays

    def _may_relay(self) -> bool:
        return self.relays is None or self.node_id in self.relays

    def on_start(self, ctx: Context) -> None:
        if self.node_id == self.source:
            ctx.broadcast("data", hops=0)

    def on_message(self, ctx: Context, message: Message) -> None:
        if message.kind == "data" and not self.got_message:
            self.got_message = True
            if self._may_relay():
                ctx.broadcast("data", hops=message.payload["hops"] + 1)


def run_broadcast(graph, source, relays=None):
    sim = Simulator(graph, lambda v: FloodNode(v, source, relays))
    metrics = sim.run()
    reached = sum(1 for p in sim.processes.values() if p.got_message)
    return reached, metrics


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    points = clustered_points(n, side=9.0, clusters=5, spread=0.8, seed=seed)
    _, point_graph = largest_component_udg(points)
    graph = int_labeled(point_graph)
    print(f"sensor field: {len(graph)} connected nodes, "
          f"{graph.edge_count()} radio links")

    backbone = greedy_connector_cds(graph).validate(graph)
    print(f"backbone (greedy-connector): {backbone.size} nodes "
          f"({100 * backbone.size / len(graph):.0f}% of the network)\n")

    source = min(graph.nodes())
    # The source must always transmit; backbone relays handle the rest.
    relays = set(backbone.nodes) | {source}

    reached_flood, flood = run_broadcast(graph, source)
    reached_backbone, routed = run_broadcast(graph, source, relays)

    assert reached_flood == len(graph), "flooding failed to reach everyone"
    assert reached_backbone == len(graph), "backbone broadcast missed nodes"

    print(f"{'strategy':<20}{'transmissions':>14}{'rounds':>8}")
    print(f"{'blind flooding':<20}{flood.transmissions:>14}{flood.rounds:>8}")
    print(f"{'CDS backbone':<20}{routed.transmissions:>14}{routed.rounds:>8}")
    saving = 100 * (1 - routed.transmissions / flood.transmissions)
    print(f"\nbackbone broadcast saves {saving:.0f}% of transmissions "
          f"while still reaching all {len(graph)} nodes")

    # Collision-free operation: TDMA slots for the backbone relays.
    from repro.scheduling import (
        broadcast_schedule_length,
        distance2_coloring,
        is_collision_free,
    )

    slots = distance2_coloring(graph, relays)
    assert is_collision_free(graph, slots)
    latency = broadcast_schedule_length(graph, backbone.nodes, source)
    print(f"\nTDMA schedule: {max(slots.values()) + 1} slots per frame "
          f"(distance-2 coloring of the backbone)")
    print(f"pipelined collision-free broadcast completes by slot {latency}")


if __name__ == "__main__":
    main()
