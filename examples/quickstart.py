#!/usr/bin/env python3
"""Quickstart: build a random wireless topology and construct backbones.

Runs both of the paper's two-phased algorithms (WAF, Section III; the
new greedy-connector algorithm, Section IV) on a connected random
unit-disk graph, validates the outputs, and relates their sizes to the
exact optimum and the paper's proven ratio bounds.

Usage::

    python examples/quickstart.py [n] [seed]
"""

import sys

from repro.analysis import estimate_gamma_c
from repro.cds import greedy_connector_cds, waf_cds
from repro.cds.bounds import greedy_bound_this_paper, waf_bound_this_paper
from repro.graphs import random_connected_udg


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    side = max(1.5, (3.1416 * n / 5.5) ** 0.5)

    print(f"deploying {n} nodes in a {side:.1f} x {side:.1f} field (seed {seed})")
    points, graph = random_connected_udg(n, side, seed=seed)
    print(f"topology: {len(graph)} nodes, {graph.edge_count()} links\n")

    waf = waf_cds(graph).validate(graph)
    greedy = greedy_connector_cds(graph).validate(graph)
    gamma = estimate_gamma_c(graph)

    print(f"phase-1 MIS size (both algorithms): {len(waf.dominators)}")
    print(f"WAF backbone (Thm 8, ratio <= 7 1/3):        {waf.size} nodes")
    print(f"greedy-connector backbone (Thm 10, <= 6 7/18): {greedy.size} nodes")
    kind = "exact" if gamma.exact else "lower bound"
    print(f"gamma_c ({kind} via {gamma.method}): {gamma.value}\n")

    print(f"WAF ratio:    {waf.size / gamma.value:.2f} "
          f"(bound {float(waf_bound_this_paper(1)):.2f} per gamma_c)")
    print(f"greedy ratio: {greedy.size / gamma.value:.2f} "
          f"(bound {float(greedy_bound_this_paper(1)):.2f} per gamma_c)")

    assert waf.size <= float(waf_bound_this_paper(gamma.value)) or not gamma.exact
    assert greedy.size <= float(greedy_bound_this_paper(gamma.value)) or not gamma.exact
    print("\nboth backbones valid; paper bounds respected\n")

    from repro.viz import render_backbone_legend, render_deployment

    print(render_deployment(points, greedy, width=56))
    print(render_backbone_legend())


if __name__ == "__main__":
    main()
