#!/usr/bin/env python3
"""Why backbone size matters: energy drain and rotation.

The intro-level motivation for minimum CDS is energy: backbone nodes
relay for everyone and die first.  This example runs the same traffic
over three policies —

* ``static``  — the Section IV backbone, built once;
* ``minimal`` — rebuilt every epoch, still minimizing size;
* ``rotate``  — rebuilt every epoch with weights = 1 / residual energy
  (the node-weighted greedy extension), moving the burden around

— and reports network lifetime (epochs until the first node dies),
how many distinct nodes ever served, and the backbone size band.

Usage::

    python examples/energy_rotation.py [n] [seed]
"""

import sys

from repro.energy import simulate_epochs
from repro.graphs import random_connected_udg


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    # Dense deployment: rotation needs alternative backbones to exist.
    side = (3.1416 * n / 10.0) ** 0.5
    _, graph = random_connected_udg(n, side, seed=seed)
    print(f"topology: {len(graph)} nodes, {graph.edge_count()} links\n")

    print(f"{'policy':<10}{'lifetime (epochs)':>18}{'distinct relays':>17}"
          f"{'size band':>12}")
    results = {}
    for policy in ("static", "minimal", "rotate"):
        report = simulate_epochs(
            graph, policy=policy, epochs=150, initial=60.0, relay_cost=5.0
        )
        results[policy] = report
        sizes = report.backbone_sizes
        band = f"{min(sizes)}-{max(sizes)}"
        print(f"{policy:<10}{report.epochs_survived:>18}"
              f"{report.distinct_backbone_nodes:>17}{band:>12}")

    gain = results["rotate"].epochs_survived / max(
        1, results["static"].epochs_survived
    )
    print(f"\nrotation extends network lifetime {gain:.1f}x over a static "
          f"backbone by spreading relay duty across "
          f"{results['rotate'].distinct_backbone_nodes} nodes")


if __name__ == "__main__":
    main()
