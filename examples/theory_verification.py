#!/usr/bin/env python3
"""Run the complete paper-verification battery and print every table.

This is the one-command reproduction: every theorem, lemma, figure and
comparison from the paper, executed and checked.  Equivalent to
``python -m repro --all`` (quick default parameters).

Usage::

    python examples/theory_verification.py
"""

import sys

from repro.experiments import all_experiments


def main() -> int:
    failed = []
    for key in sorted(all_experiments()):
        _, fn = all_experiments()[key]
        result = fn()
        print(result.render())
        print()
        if not result.passed:
            failed.append(key)
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    print("every paper claim verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
