"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 660 editable-wheel support; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
