"""Ablation — post-pruning the two-phased outputs.

Neither paper algorithm prunes; this measures how much slack greedy
minimalization recovers, and what it costs.
"""

import pytest

from repro.cds import greedy_connector_cds, prune_cds, waf_cds

ALGORITHMS = {"waf": waf_cds, "greedy-connector": greedy_connector_cds}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_pruning_cost(benchmark, name, udg60):
    cds = ALGORITHMS[name](udg60)
    pruned = benchmark(prune_cds, udg60, cds.nodes)
    assert len(pruned) <= cds.size


def test_pruning_gain_is_modest_for_greedy(udg60):
    # The Section IV greedy leaves little on the table compared to WAF —
    # the expected shape of this ablation.
    waf = waf_cds(udg60)
    greedy = greedy_connector_cds(udg60)
    waf_slack = waf.size - len(prune_cds(udg60, waf.nodes))
    greedy_slack = greedy.size - len(prune_cds(udg60, greedy.nodes))
    assert greedy_slack <= waf_slack + 2
