"""Export the standing performance record to ``BENCH_*.json``.

A plain script (not a pytest bench): it rebuilds the shared benchmark
fixtures (20/60/150-node connected UDGs, same parameters as
``conftest.py``), times the UDG builders and both of the paper's
algorithms on each, captures one instrumented run's counters per case,
and writes everything as JSON — the files (``BENCH_baseline.json`` from
PR 1, ``BENCH_pr2.json`` after the indexed-kernel/lazy-greedy PR) that
optimisation PRs compare against.

Timing runs are executed with instrumentation *disabled* so the
baseline measures the algorithms, not the bookkeeping; a separate
enabled run supplies the operation counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py            # repo root
    PYTHONPATH=src python benchmarks/bench_to_json.py -o out.json --repeats 9
    # counter-focused smoke run (subset of fixtures, parallel):
    PYTHONPATH=src python benchmarks/bench_to_json.py \\
        -o smoke.json --fixtures udg20,udg60 --repeats 3 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

from repro import __version__
from repro.cds import greedy_connector_cds, waf_cds
from repro.experiments.parallel import parallel_map
from repro.graphs import random_connected_udg
from repro.graphs.udg import unit_disk_graph, unit_disk_graph_naive
from repro.obs import OBS, RunRecord

SCHEMA_ID = "repro.obs/bench-baseline/v1"

#: The shared fixtures of ``benchmarks/conftest.py``: name -> (n, side, seed).
FIXTURES: dict[str, tuple[int, float, int]] = {
    "udg20": (20, 3.8, 1),
    "udg60": (60, 6.2, 2),
    "udg150": (150, 8.0, 3),
}

#: Benchmarked case names, in output order per fixture.
CASE_NAMES = ("udg_build_naive", "udg_build_grid", "waf", "greedy")


def _cases(points, graph):
    """The benchmarked callables for one fixture."""
    return {
        "udg_build_naive": lambda: unit_disk_graph_naive(points),
        "udg_build_grid": lambda: unit_disk_graph(points),
        "waf": lambda: waf_cds(graph),
        "greedy": lambda: greedy_connector_cds(graph),
    }


def _result_sizes(value) -> dict:
    if hasattr(value, "size"):  # a CDSResult
        return {
            "cds_size": value.size,
            "dominators": len(value.dominators),
            "connectors": len(value.connectors),
        }
    return {"nodes": len(value), "edges": value.edge_count()}


def run_case(name: str, fixture: str, fn, repeats: int) -> RunRecord:
    """Time ``fn`` (instrumentation off) and count it (one run, on)."""
    n, side, seed = FIXTURES[fixture]
    fn()  # warmup
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - t0)
    with OBS.capture() as reg:
        fn()
        record = RunRecord.from_registry(
            reg,
            algorithm=name,
            instance={"fixture": fixture, "n": n, "side": side},
            seed=seed,
            results=_result_sizes(value),
            meta={
                "repeats": repeats,
                "seconds_best": min(samples),
                "seconds_mean": statistics.fmean(samples),
                "seconds_median": statistics.median(samples),
            },
        )
    return record


def _case_task(task: tuple[str, str, int]) -> dict:
    """Worker: rebuild one fixture, run one case, return the record JSON.

    Module-level (and self-contained: the deployment is regenerated from
    its seed in-process) so ``parallel_map`` can run cases across worker
    processes with identical results.
    """
    case_name, fixture, repeats = task
    n, side, seed = FIXTURES[fixture]
    points, graph = random_connected_udg(n, side, seed=seed)
    fn = _cases(points, graph)[case_name]
    return run_case(f"{case_name}/{fixture}", fixture, fn, repeats).to_json_obj()


def build_baseline(
    repeats: int, fixtures: list[str] | None = None, jobs: int = 1
) -> dict:
    names = list(FIXTURES) if fixtures is None else list(fixtures)
    for name in names:
        if name not in FIXTURES:
            raise KeyError(f"unknown fixture {name!r}; known: {sorted(FIXTURES)}")
    tasks = [(case, fixture, repeats) for fixture in names for case in CASE_NAMES]
    runs = parallel_map(_case_task, tasks, jobs=jobs)
    return {
        "schema": SCHEMA_ID,
        "version": __version__,
        "python": platform.python_version(),
        "repeats": repeats,
        "fixtures": {
            name: {"n": n, "side": side, "seed": seed}
            for name, (n, side, seed) in FIXTURES.items()
            if name in names
        },
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_baseline.json"),
        help="output path (default: <repo root>/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="timing repetitions per case"
    )
    parser.add_argument(
        "--fixtures",
        metavar="NAMES",
        help=f"comma-separated fixture subset (default: all of {','.join(FIXTURES)})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run cases across N worker processes; counters are unaffected "
            "(deterministic per case) but timing samples compete for cores, "
            "so keep --jobs 1 for a committed timing baseline"
        ),
    )
    args = parser.parse_args(argv)

    fixtures = args.fixtures.split(",") if args.fixtures else None
    try:
        baseline = build_baseline(args.repeats, fixtures, max(1, args.jobs))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    Path(args.out).write_text(json.dumps(baseline, indent=2) + "\n")
    slowest = max(baseline["runs"], key=lambda r: r["meta"]["seconds_median"])
    print(
        f"{len(baseline['runs'])} cases -> {args.out} "
        f"(slowest: {slowest['algorithm']} "
        f"{slowest['meta']['seconds_median'] * 1e3:.2f} ms median)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
