"""Export the standing performance record to ``BENCH_*.json``.

A plain script (not a pytest bench): it rebuilds the shared benchmark
fixtures (20/60/150-node connected UDGs, same parameters as
``conftest.py``, plus the 1000 through 1000000-node scaling tiers),
times the UDG builders, the phase-1 MIS and the solvers — the paper
pair, the Steiner baseline and the fault-tolerant ``mfold`` variants,
with the CSR, bitset and array kernels pinned separately for the
kernelized ones — captures one instrumented run's counters per case, and writes
everything as JSON — the files (``BENCH_baseline.json`` from PR 1,
``BENCH_pr2.json`` after the indexed-kernel/lazy-greedy PR,
``BENCH_pr3.json`` after the bitset kernel, ``BENCH_pr7.json`` after
the array kernel) that optimisation PRs compare against.  Read a series of them
with ``python -m repro bench compare`` (``repro.obs.trend``), which is
also the CI perf-regression gate.

Timing runs are executed with instrumentation *disabled* so the
baseline measures the algorithms, not the bookkeeping; a separate
enabled run supplies the operation counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py            # repo root
    PYTHONPATH=src python benchmarks/bench_to_json.py -o out.json --repeats 9
    # counter-focused smoke run (subset of fixtures, parallel):
    PYTHONPATH=src python benchmarks/bench_to_json.py \\
        -o smoke.json --fixtures udg20,udg60 --repeats 3 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro import __version__
from repro.cds import (
    greedy_connector_cds,
    mfold_2conn_cds,
    mfold_greedy_cds,
    steiner_cds,
    waf_cds,
)
from repro.experiments.parallel import parallel_map
from repro.graphs import random_connected_udg
from repro.graphs.backend import build_kernel
from repro.graphs.udg import (
    GRID_VECTOR_N,
    Point,
    unit_disk_graph,
    unit_disk_graph_naive,
    unit_disk_graph_vectorized,
)
from repro.mis.first_fit import first_fit_mis_nodes
from repro.obs import OBS, RunRecord
from repro.obs.trend import BENCH_SCHEMA_ID as SCHEMA_ID

#: The shared fixtures of ``benchmarks/conftest.py`` plus the
#: large-instance scaling tier: name -> (n, side, seed).  The tiers up
#: to udg10000 keep deployment density fixed (~3.1 nodes per unit
#: square, mean degree ~9.5) so only ``n`` varies along the scaling
#: axis; the vector-kernel tier (udg100000/udg1000000, PR 7) is denser
#: (~5.1 and ~6.9 nodes per unit square) because at those sizes the
#: fixed density sits below the random-geometric connectivity
#: threshold — boundary effects dominate and the rejection sampler in
#: ``random_connected_udg`` would never find a connected deployment.
FIXTURES: dict[str, tuple[int, float, int]] = {
    "udg20": (20, 3.8, 1),
    "udg60": (60, 6.2, 2),
    "udg150": (150, 8.0, 3),
    "udg1000": (1000, 18.0, 4),
    "udg4000": (4000, 36.0, 5),
    "udg10000": (10000, 57.0, 6),
    "udg100000": (100000, 140.0, 7),
    "udg1000000": (1000000, 380.0, 8),
}

#: Fixtures benchmarked when ``--fixtures`` is not given: the cheap
#: tier only, so the default invocation (and the CI counter smoke)
#: stays fast.  Select the scaling tier explicitly, e.g.
#: ``--fixtures udg1000,udg4000,udg10000``.
DEFAULT_FIXTURES = ("udg20", "udg60", "udg150")

#: Node count from which the O(n^2) naive UDG builder is skipped.
NAIVE_BUILD_MAX_N = 2000

#: Shrink factor applied to a fixture's deployment for the
#: ``mfold_2conn`` case.  The shared fixtures sit near the random-
#: geometric connectivity threshold and are never 2-connected, so the
#: (2,m) solver — correctly — refuses them.  Scaling the same points
#: toward the origin only adds edges (the UDG radius is fixed at 1),
#: and at 0.6 every fixture tier's deployment is 2-connected, keeping
#: the case deterministic while benchmarking the augmentation phase on
#: an input it accepts.
MFOLD_2CONN_SCALE = 0.6

#: Benchmarked case names, in output order per fixture.  ``waf`` and
#: ``greedy`` run the solvers' defaults (``kernel="auto"``) as every
#: earlier baseline did; the ``*_indexed`` / ``*_bitset`` /
#: ``*_array`` variants pin the kernel so the scaling table can
#: compare the CSR, bitmask and numpy code paths on identical
#: instances.
CASE_NAMES = (
    "udg_build_naive",
    "udg_build_grid",
    "udg_build_vector",
    "mis_indexed",
    "mis_bitset",
    "mis_array",
    "waf",
    "waf_indexed",
    "waf_bitset",
    "waf_array",
    "greedy",
    "greedy_indexed",
    "greedy_bitset",
    "greedy_array",
    "mfold_greedy",
    "mfold_2conn",
    "steiner",
    "sim_mis",
    "sim_mis_reference",
    "sim_waf_dist",
    "sim_greedy_dist",
)

#: Largest fixture ``n`` (inclusive) each case still runs at — beyond
#: it the case is dropped from the fixture rather than holding a
#: baseline run for hours.  The naive builder is quadratic; the
#: interpreted greedy tracker and the Steiner solver are
#: superlinear-in-practice beyond 10^4; the bitset kernel's masks
#: cost n^2/8 bytes (125 GB at 10^6); the default builder IS the
#: vectorized path at GRID_VECTOR_N and up, so the ``grid`` case
#: stops where its name stops being true.  Absent means unlimited.
CASE_MAX_N: dict[str, int] = {
    "udg_build_naive": NAIVE_BUILD_MAX_N - 1,
    "udg_build_grid": GRID_VECTOR_N - 1,
    "mis_indexed": 100_000,
    "mis_bitset": 100_000,
    "waf": 100_000,
    "waf_indexed": 100_000,
    "waf_bitset": 100_000,
    "waf_array": 100_000,
    "greedy_indexed": 10_000,
    "greedy_bitset": 100_000,
    # Fault-tolerant variants (PR 10): the deficit-driven coverage
    # greedy is interpreted like the lazy greedy tracker, and the
    # 2-connectivity augmentation runs cut-vertex sweeps over the
    # backbone — both stop at the same tier the interpreted greedy
    # cases do.
    "mfold_greedy": 10_000,
    "mfold_2conn": 10_000,
    "steiner": 10_000,
    # Protocol-simulation cases (PR 8): the batched round engine runs
    # the MIS protocol routinely at 10^5 (the slow lane); the
    # per-message reference engine and the WAF pipeline stop at 10^4,
    # and the iterative leader-coordinated greedy (O(connectors) full
    # flood/convergecast sweeps) at 10^3.
    "sim_mis": 100_000,
    "sim_mis_reference": 10_000,
    "sim_waf_dist": 10_000,
    "sim_greedy_dist": 1_000,
}


def _sim_mis(graph_int, engine: str):
    """Tree + MIS on one engine over a shared interned topology — the
    protocol path whose n=10^4-10^5 scaling PR 8 is about."""
    from repro.distributed import RadioTopology, build_bfs_tree, elect_mis

    topo = RadioTopology(graph_int)
    tree, tree_metrics = build_bfs_tree(graph_int, 0, engine=engine, topology=topo)
    mis, mis_metrics = elect_mis(graph_int, tree, engine=engine, topology=topo)
    if OBS.enabled:
        merged = tree_metrics.merge(mis_metrics)
        OBS.incr("bench.sim.rounds", merged.rounds)
        OBS.incr("bench.sim.transmissions", merged.transmissions)
    return tuple(mis)


def _cases(points, graph):
    """The benchmarked callables for one fixture."""
    memo: dict = {}

    def graph_int():
        # Integer-relabeled copy for the protocol cases, built once per
        # fixture and only when a sim_* case actually runs.
        if "g" not in memo:
            from repro.experiments.instances import int_labeled

            memo["g"] = int_labeled(graph)
        return memo["g"]

    def graph_2conn():
        # Densified copy for the (2,m) case (see MFOLD_2CONN_SCALE),
        # built once per fixture and only when the case runs.
        if "g2" not in memo:
            memo["g2"] = unit_disk_graph(
                [
                    Point(p.x * MFOLD_2CONN_SCALE, p.y * MFOLD_2CONN_SCALE)
                    for p in points
                ]
            )
        return memo["g2"]

    def sim_waf_dist():
        from repro.distributed import distributed_waf_cds

        result, metrics = distributed_waf_cds(graph_int())
        if OBS.enabled:
            OBS.incr("bench.sim.rounds", metrics.rounds)
            OBS.incr("bench.sim.transmissions", metrics.transmissions)
        return result

    def sim_greedy_dist():
        from repro.distributed import distributed_greedy_cds

        result, metrics = distributed_greedy_cds(graph_int())
        if OBS.enabled:
            OBS.incr("bench.sim.rounds", metrics.rounds)
            OBS.incr("bench.sim.transmissions", metrics.transmissions)
        return result

    return {
        "udg_build_naive": lambda: unit_disk_graph_naive(points),
        "udg_build_grid": lambda: unit_disk_graph(points),
        "udg_build_vector": lambda: unit_disk_graph_vectorized(points),
        "mis_indexed": lambda: first_fit_mis_nodes(
            graph, index=build_kernel(graph, "indexed")
        ),
        "mis_bitset": lambda: first_fit_mis_nodes(
            graph, index=build_kernel(graph, "bitset")
        ),
        "mis_array": lambda: first_fit_mis_nodes(
            graph, index=build_kernel(graph, "array")
        ),
        "waf": lambda: waf_cds(graph),
        "waf_indexed": lambda: waf_cds(graph, kernel="indexed"),
        "waf_bitset": lambda: waf_cds(graph, kernel="bitset"),
        "waf_array": lambda: waf_cds(graph, kernel="array"),
        "greedy": lambda: greedy_connector_cds(graph),
        "greedy_indexed": lambda: greedy_connector_cds(graph, kernel="indexed"),
        "greedy_bitset": lambda: greedy_connector_cds(graph, kernel="bitset"),
        "greedy_array": lambda: greedy_connector_cds(graph, kernel="array"),
        "mfold_greedy": lambda: mfold_greedy_cds(graph, m=2),
        "mfold_2conn": lambda: mfold_2conn_cds(graph_2conn(), m=2),
        "steiner": lambda: steiner_cds(graph),
        "sim_mis": lambda: _sim_mis(graph_int(), "batched"),
        "sim_mis_reference": lambda: _sim_mis(graph_int(), "reference"),
        "sim_waf_dist": sim_waf_dist,
        "sim_greedy_dist": sim_greedy_dist,
    }


def _fixture_cases(
    fixture: str, cases: "list[str] | None" = None
) -> tuple[str, ...]:
    """The cases run for one fixture (see :data:`CASE_MAX_N`).

    ``cases`` optionally restricts to a subset of :data:`CASE_NAMES`
    (the ``--cases`` flag) — the size caps still apply on top.
    """
    n = FIXTURES[fixture][0]
    allowed = CASE_NAMES if cases is None else tuple(cases)
    for case in allowed:
        if case not in CASE_NAMES:
            raise KeyError(f"unknown case {case!r}; known: {list(CASE_NAMES)}")
    return tuple(
        c for c in CASE_NAMES if c in allowed and n <= CASE_MAX_N.get(c, n)
    )


def _git_commit() -> str | None:
    """The current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def _result_sizes(value) -> dict:
    if hasattr(value, "size"):  # a CDSResult
        return {
            "cds_size": value.size,
            "dominators": len(value.dominators),
            "connectors": len(value.connectors),
        }
    if isinstance(value, tuple):  # a dominator tuple (mis cases)
        return {"dominators": len(value)}
    return {"nodes": len(value), "edges": value.edge_count()}


def run_case(name: str, fixture: str, fn, repeats: int) -> RunRecord:
    """Time ``fn`` (instrumentation off) and count it (one run, on)."""
    n, side, seed = FIXTURES[fixture]
    fn()  # warmup
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - t0)
    with OBS.capture() as reg:
        fn()
        record = RunRecord.from_registry(
            reg,
            algorithm=name,
            instance={"fixture": fixture, "n": n, "side": side},
            seed=seed,
            results=_result_sizes(value),
            meta={
                "repeats": repeats,
                "seconds_best": min(samples),
                "seconds_mean": statistics.fmean(samples),
                "seconds_median": statistics.median(samples),
            },
        )
    return record


def _case_task(task: tuple[str, str, int]) -> dict:
    """Worker: rebuild one fixture, run one case, return the record JSON.

    Module-level (and self-contained: the deployment is regenerated from
    its seed in-process) so ``parallel_map`` can run cases across worker
    processes with identical results.
    """
    case_name, fixture, repeats = task
    n, side, seed = FIXTURES[fixture]
    points, graph = random_connected_udg(n, side, seed=seed)
    fn = _cases(points, graph)[case_name]
    return run_case(f"{case_name}/{fixture}", fixture, fn, repeats).to_json_obj()


def _task_key(task: tuple[str, str, int]) -> str:
    """Checkpoint-ledger identity of one benchmark case."""
    case_name, fixture, _ = task
    return f"{case_name}/{fixture}"


def build_baseline(
    repeats: int,
    fixtures: list[str] | None = None,
    jobs: int = 1,
    *,
    cases: list[str] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
) -> dict:
    names = list(DEFAULT_FIXTURES) if fixtures is None else list(fixtures)
    for name in names:
        if name not in FIXTURES:
            raise KeyError(f"unknown fixture {name!r}; known: {sorted(FIXTURES)}")
    tasks = [
        (case, fixture, repeats)
        for fixture in names
        for case in _fixture_cases(fixture, cases)
    ]
    if checkpoint:
        # Long scaling-tier runs journal per case: an interrupted run
        # resumed with --resume re-times only the missing cases.  (A
        # resumed case keeps its journalled timing samples — the
        # counters are deterministic either way.)
        from repro.reliability import run_cells

        report = run_cells(
            _case_task,
            tasks,
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            label=f"bench:r{repeats}",
            key_fn=_task_key,
        )
        if not report.ok:
            raise RuntimeError(
                "benchmark sweep incomplete (a baseline needs every "
                "case):\n" + report.render_failures()
            )
        runs = report.results
    else:
        runs = parallel_map(_case_task, tasks, jobs=jobs)
    return {
        "schema": SCHEMA_ID,
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_commit": _git_commit(),
        "repeats": repeats,
        "fixtures": {
            name: {"n": n, "side": side, "seed": seed}
            for name, (n, side, seed) in FIXTURES.items()
            if name in names
        },
        "runs": runs,
    }


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs`` / ``--repeats``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_baseline.json"),
        help="output path (default: <repo root>/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--repeats",
        type=_positive_int,
        default=7,
        help="timing repetitions per case",
    )
    parser.add_argument(
        "--fixtures",
        metavar="NAMES",
        help=(
            f"comma-separated fixture subset (default: "
            f"{','.join(DEFAULT_FIXTURES)}; also available: "
            f"{','.join(n for n in FIXTURES if n not in DEFAULT_FIXTURES)})"
        ),
    )
    parser.add_argument(
        "--cases",
        metavar="NAMES",
        help=(
            "comma-separated case subset (default: all cases a fixture's "
            "size allows) — e.g. --cases sim_mis,sim_waf_dist to bench "
            "only the protocol-simulation lane"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "run cases across N worker processes; counters are unaffected "
            "(deterministic per case) but timing samples compete for cores, "
            "so keep --jobs 1 for a committed timing baseline"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help=(
            "journal completed cases to this JSONL ledger "
            "(repro.reliability/checkpoint/v1) so a long scaling-tier "
            "run can be interrupted and resumed"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="load --checkpoint and re-run only the missing cases",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint FILE", file=sys.stderr)
        return 2

    fixtures = args.fixtures.split(",") if args.fixtures else None
    cases = args.cases.split(",") if args.cases else None
    try:
        baseline = build_baseline(
            args.repeats,
            fixtures,
            args.jobs,
            cases=cases,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except (KeyError, ValueError, RuntimeError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    Path(args.out).write_text(json.dumps(baseline, indent=2) + "\n")
    slowest = max(baseline["runs"], key=lambda r: r["meta"]["seconds_median"])
    print(
        f"{len(baseline['runs'])} cases -> {args.out} "
        f"(slowest: {slowest['algorithm']} "
        f"{slowest['meta']['seconds_median'] * 1e3:.2f} ms median)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
