"""Bench CMP — the Sections III-IV comparison plus every baseline.

Asserts the paper's motivating shape on the benchmark instance — the
greedy-connector output is never larger than WAF's (same phase 1) —
and times each algorithm on the same 60-node UDG.
"""

import pytest

from repro.baselines import ALL_BASELINES
from repro.cds import greedy_connector_cds, steiner_cds, waf_cds
from repro.experiments import get_experiment

OUR = {
    "waf": waf_cds,
    "greedy-connector": greedy_connector_cds,
    "steiner": steiner_cds,
}


@pytest.mark.parametrize("name", list(OUR))
def test_our_algorithms(benchmark, name, udg60):
    result = benchmark(OUR[name], udg60)
    assert result.is_valid(udg60)


@pytest.mark.parametrize("name", list(ALL_BASELINES))
def test_baselines(benchmark, name, udg60):
    result = benchmark(ALL_BASELINES[name], udg60)
    assert result.is_valid(udg60)


def test_greedy_beats_waf_shape(udg60):
    assert greedy_connector_cds(udg60).size <= waf_cds(udg60).size


def test_cmp_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("CMP")(n=20, seeds=2),
        rounds=1,
        iterations=1,
    )
    assert result.passed
