"""Bench T6 — Theorem 6: ``|I(V)| <= 11n/3 + 1`` for connected sets."""

from repro.analysis import packing_count
from repro.cds.bounds import neighborhood_bound
from repro.experiments import get_experiment
from repro.geometry import figure2_linear, star_decomposition


def test_chain_packing_vs_bound(benchmark):
    centers, witness = benchmark(figure2_linear, 8)
    assert packing_count(witness, centers) == 27
    assert 27 <= float(neighborhood_bound(8))


def test_star_decomposition_on_chain(benchmark):
    # The Lemma 4 machinery behind Theorem 6, on the worst-case family.
    centers, _ = figure2_linear(10)
    decomposition = benchmark(star_decomposition, centers)
    assert sum(len(s) for s in decomposition) == 10
    assert all(len(s) >= 2 for s in decomposition)


def test_theorem6_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("T6")(
            chain_sizes=(3, 5, 8), random_n=6, random_seeds=2, grid_step=0.3
        ),
        rounds=1,
        iterations=1,
    )
    assert result.passed
