"""Bench C7 — Corollary 7: ``alpha <= 3 2/3 gamma_c + 1``.

Times exact alpha and exact gamma_c on a 20-node UDG and asserts the
corollary, then regenerates the C7 experiment table once.
"""

from repro.cds import connected_domination_number
from repro.cds.bounds import alpha_bound_this_paper
from repro.experiments import get_experiment
from repro.mis import independence_number


def test_exact_alpha(benchmark, udg20):
    alpha = benchmark(independence_number, udg20)
    assert alpha >= 1


def test_exact_gamma_c(benchmark, udg20):
    gamma_c = benchmark(connected_domination_number, udg20)
    assert gamma_c >= 1


def test_corollary7_holds(udg20):
    alpha = independence_number(udg20)
    gamma_c = connected_domination_number(udg20)
    assert alpha <= float(alpha_bound_this_paper(gamma_c))


def test_corollary7_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("C7")(sizes=(10, 14), seeds=3),
        rounds=1,
        iterations=1,
    )
    assert result.passed
