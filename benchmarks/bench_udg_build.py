"""Ablation — UDG construction: naive O(n^2) vs grid-bucketed."""

import pytest

from repro.graphs import (
    unit_disk_graph,
    unit_disk_graph_naive,
    uniform_points,
)

SIZES = [100, 400]


@pytest.mark.parametrize("n", SIZES)
def test_bucketed_build(benchmark, n):
    pts = uniform_points(n, side=(n / 3) ** 0.5, seed=0)
    g = benchmark(unit_disk_graph, pts)
    assert len(g) == n


@pytest.mark.parametrize("n", SIZES)
def test_naive_build(benchmark, n):
    pts = uniform_points(n, side=(n / 3) ** 0.5, seed=0)
    g = benchmark(unit_disk_graph_naive, pts)
    assert len(g) == n


def test_builders_agree():
    pts = uniform_points(300, 10.0, seed=5)
    fast = unit_disk_graph(pts)
    slow = unit_disk_graph_naive(pts)
    assert {frozenset(e) for e in fast.edges()} == {
        frozenset(e) for e in slow.edges()
    }
