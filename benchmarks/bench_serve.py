"""Benchmark the solve daemon and export ``BENCH_serve.json``.

A plain script in the mould of ``bench_to_json.py``: for each serving
fixture it boots a fresh in-process daemon (:class:`repro.serve.
ServerThread`), drives the deterministic load generator at a fixed
offered load over a fixed instance grid, and records throughput,
client-side latency percentiles (p50 as ``meta.seconds_median``, so the
``bench compare`` time gate watches serving latency) and the cache-hit
rate.  Latency percentiles (p50/p90/p95/p99) come straight from the
load generator's merged :class:`~repro.obs.metrics.Histogram`, and the
merged histogram record itself is committed under the run record's
``histograms`` section.  Every response is schema-validated and audited
for the bit-identical cache contract and for trace-ID uniqueness as
part of the run.

The committed counters are the *deterministic* subset of the serving
metrics — offered requests and unique cells solved.  The latter is
guaranteed by the cache + single-flight design (each unique instance is
solved exactly once, however the concurrent arrivals interleave) and
asserted before the file is written, so the zero-budget counter gate of
``python -m repro bench compare`` covers serving too: a PR that breaks
coalescing or cache keying shows up as counter drift, not just noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                # repo root
    PYTHONPATH=src python benchmarks/bench_serve.py -o out.json --jobs 2
    PYTHONPATH=src python benchmarks/bench_serve.py --fixtures udg60
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from bench_to_json import FIXTURES, _git_commit, _positive_int

from repro import __version__
from repro.obs.trend import BENCH_SCHEMA_ID as SCHEMA_ID
from repro.serve import ServeConfig, ServerThread, request_sequence, run_load

#: Offered load per fixture: unique instance seeds, total requests and
#: client concurrency.  Requests exceed the unique grid several-fold on
#: purpose — repeats are what exercise the cache and the single-flight
#: path, and the resulting hit rate is part of the record.
SERVE_CASES: dict[str, dict[str, int]] = {
    "udg60": {"unique_seeds": 8, "requests": 200, "concurrency": 8},
    "udg150": {"unique_seeds": 8, "requests": 200, "concurrency": 8},
    "udg1000": {"unique_seeds": 4, "requests": 30, "concurrency": 4},
}

DEFAULT_FIXTURES = ("udg60", "udg150", "udg1000")


def run_serve_case(fixture: str, jobs: int) -> dict:
    """Serve one fixture's load; return the bench run record."""
    n, side, _ = FIXTURES[fixture]
    case = SERVE_CASES[fixture]
    unique = case["unique_seeds"]
    sequence = request_sequence(
        [n],
        list(range(1, unique + 1)),
        case["requests"],
        side=side,
        rng_seed=n,  # fixed per fixture: the mix is part of the benchmark
    )
    config = ServeConfig(jobs=jobs)
    with ServerThread(config) as thread:
        report = run_load(
            thread.address, sequence, concurrency=case["concurrency"]
        )
        stats = thread.server.stats.snapshot(thread.server.cache)
    if not report["ok"]:
        raise RuntimeError(
            f"{fixture}: load audit failed "
            f"({report['errors']} errors, "
            f"{len(report['schema_violations'])} schema violations, "
            f"{len(report['identity_violations'])} identity violations, "
            f"{len(report['trace_violations'])} trace violations)"
        )
    if stats["cells_solved"] != unique:
        # The committed counters must be deterministic; cells_solved is
        # only so while every unique instance solves exactly once.
        raise RuntimeError(
            f"{fixture}: expected {unique} unique solves, daemon reports "
            f"{stats['cells_solved']} — cache/single-flight regression?"
        )
    latency = report["latency_seconds"]
    return {
        "schema": "repro.obs/run-record/v1",
        "algorithm": f"serve/{fixture}",
        "instance": {
            "fixture": fixture,
            "n": n,
            "side": side,
            "unique_seeds": unique,
            "requests": case["requests"],
            "concurrency": case["concurrency"],
            "jobs": jobs,
        },
        "seed": n,
        "counters": {
            "serve.requests": case["requests"],
            "serve.cells.solved": unique,
        },
        "timings": {
            "serve.request": {
                "seconds": latency["mean"] * latency["count"],
                "count": latency["count"],
            }
        },
        "histograms": {"load.latency": report["latency_histogram"]},
        "results": {
            "requests_per_second": report["requests_per_second"],
            "cache_hit_rate": report["server"]["cache_hit_rate"],
            "errors": report["errors"],
            "batches": stats["batches"],
            "batch_max": stats["batch_max"],
            "coalesced": stats["coalesced"],
        },
        "meta": {
            "seconds_median": latency["p50"],
            "seconds_mean": latency["mean"],
            "seconds_p90": latency["p90"],
            "seconds_p95": latency["p95"],
            "seconds_p99": latency["p99"],
            "seconds_max": latency["max"],
            "requests_per_second": report["requests_per_second"],
            "cache_hit_rate": report["server"]["cache_hit_rate"],
        },
    }


def build_serve_baseline(fixtures: list[str], jobs: int) -> dict:
    runs = []
    for fixture in fixtures:
        if fixture not in SERVE_CASES:
            raise KeyError(
                f"unknown serve fixture {fixture!r}; known: "
                f"{sorted(SERVE_CASES)}"
            )
        print(f"serving {fixture} ...", flush=True)
        runs.append(run_serve_case(fixture, jobs))
    return {
        "schema": SCHEMA_ID,
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_commit": _git_commit(),
        "cases": {name: dict(SERVE_CASES[name]) for name in fixtures},
        "fixtures": {
            name: {
                "n": FIXTURES[name][0],
                "side": FIXTURES[name][1],
                "seed": FIXTURES[name][2],
            }
            for name in fixtures
        },
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the solve daemon into a BENCH_*.json."
    )
    parser.add_argument(
        "-o",
        "--out",
        default="BENCH_serve.json",
        help="output path (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--fixtures",
        default=",".join(DEFAULT_FIXTURES),
        help="comma-separated serving fixtures "
        f"(default: {','.join(DEFAULT_FIXTURES)})",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="daemon solver processes per batch (default: 1)",
    )
    args = parser.parse_args(argv)
    fixtures = [f for f in args.fixtures.split(",") if f.strip()]
    baseline = build_serve_baseline(fixtures, args.jobs)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=False)
        fh.write("\n")
    for run in baseline["runs"]:
        meta = run["meta"]
        print(
            f"{run['algorithm']}: "
            f"{meta['requests_per_second']:.0f} req/s, "
            f"p50 {meta['seconds_median'] * 1e3:.2f}ms, "
            f"p99 {meta['seconds_p99'] * 1e3:.2f}ms, "
            f"hit rate {meta['cache_hit_rate']:.0%}"
        )
    print(f"wrote {args.out} ({len(baseline['runs'])} serve case(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
