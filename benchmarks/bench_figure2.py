"""Bench F2 — Figure 2: 3(n+1) independent points around n collinear
unit-spaced points, for both parities and growing n."""

import pytest

from repro.analysis import packing_count
from repro.geometry import figure2_linear, is_independent


@pytest.mark.parametrize("n", [4, 9, 16, 33])
def test_linear_construction(benchmark, n):
    centers, witness = benchmark(figure2_linear, n)
    assert is_independent(witness)
    assert packing_count(witness, centers) == 3 * (n + 1)
