"""Ablation — incremental gain tracking vs from-scratch recomputation.

The GainTracker maintains components with a union-find; the naive
alternative recomputes connected components per candidate per step.
This is the design choice that makes the greedy phase practical.
"""

from repro.cds import GainTracker, gain_of
from repro.mis import first_fit_mis


def greedy_incremental(graph, dominators):
    tracker = GainTracker(graph, dominators)
    connectors = []
    while tracker.component_count > 1:
        w, _ = tracker.best_connector()
        tracker.add(w)
        connectors.append(w)
    return connectors


def greedy_from_scratch(graph, dominators):
    included = set(dominators)
    connectors = []
    from repro.cds import component_count

    while component_count(graph, included) > 1:
        best_w, best_gain = None, 0
        for w in graph.nodes():
            if w in included:
                continue
            g = gain_of(graph, included, w)
            if g > best_gain or (g == best_gain > 0 and (best_w is None or w < best_w)):
                best_w, best_gain = w, g
        assert best_w is not None and best_gain >= 1
        included.add(best_w)
        connectors.append(best_w)
    return connectors


def test_incremental(benchmark, udg60):
    mis = first_fit_mis(udg60)
    connectors = benchmark(greedy_incremental, udg60, mis.nodes)
    assert connectors


def test_from_scratch(benchmark, udg60):
    mis = first_fit_mis(udg60)
    connectors = benchmark(greedy_from_scratch, udg60, mis.nodes)
    assert connectors


def test_both_select_identically(udg60):
    mis = first_fit_mis(udg60)
    assert greedy_incremental(udg60, mis.nodes) == greedy_from_scratch(
        udg60, mis.nodes
    )
