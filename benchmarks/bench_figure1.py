"""Bench F1 — Figure 1 tightness constructions (8 in a 2-star
neighborhood, 12 in a 3-star neighborhood)."""

from repro.analysis import packing_count
from repro.geometry import figure1_three_star, figure1_two_star, is_independent, phi


def test_two_star_construction(benchmark):
    centers, witness = benchmark(figure1_two_star)
    assert is_independent(witness)
    assert packing_count(witness, centers) == phi(2) == 8


def test_three_star_construction(benchmark):
    centers, witness = benchmark(figure1_three_star)
    assert is_independent(witness)
    assert packing_count(witness, centers) == phi(3) == 12
