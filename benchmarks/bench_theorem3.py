"""Bench T3 — Theorem 3: ``|I(S)| <= phi_n`` for n-stars.

Regenerates the star-packing row set (experiment T3) and times the
empirical packing search on a random 4-star.
"""

from repro.analysis import empirical_max_packing, packing_count
from repro.experiments import get_experiment
from repro.experiments.instances import random_star
from repro.geometry import phi


def test_star_packing_search(benchmark):
    star = random_star(4, seed=0)

    found = benchmark(empirical_max_packing, star, 0.25)
    assert packing_count(found, star) <= phi(4)


def test_theorem3_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("T3")(max_n=4, seeds_per_n=2, grid_step=0.3),
        rounds=1,
        iterations=1,
    )
    assert result.passed
