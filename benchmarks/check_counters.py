"""Diff a ``bench_to_json.py`` output against committed expected counters.

Timing is machine-dependent; the operation counters are not — for a
fixed fixture every builder and solver performs exactly the same
dict-ordered work on every machine and Python version the CI matrix
runs.  So the bench-smoke CI job regenerates the cheap fixtures and
asserts the counters match ``benchmarks/expected_counters.json``
byte-for-byte: an algorithmic regression (more gain evaluations for
the same instance) fails the build even when wall-clock noise would
hide it, and a timing-only change cannot trip it.

Since the trend observatory landed this script is a **thin wrapper**
over :func:`repro.obs.trend.counter_drift` — the one counter-
equivalence implementation, shared with ``python -m repro bench
compare`` and the CI ``perf-gate`` job.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py \\
        -o /tmp/smoke.json --fixtures udg20,udg60 --repeats 1
    python benchmarks/check_counters.py /tmp/smoke.json

Regenerate the expected file after an *intentional* counter change
(and say why in the commit)::

    python benchmarks/check_counters.py /tmp/smoke.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Runnable without PYTHONPATH (the CI job calls it bare).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trend import counter_drift  # noqa: E402

EXPECTED_PATH = Path(__file__).resolve().parent / "expected_counters.json"

#: Counter/result keys that must be deterministic per fixture.  Timers
#: and ``meta`` timing statistics are deliberately not compared.
DETERMINISTIC_KEYS = ("counters", "results", "seed")


def extract(bench: dict) -> dict:
    """``algorithm -> {counters, results, seed}`` for every run."""
    return {
        run["algorithm"]: {key: run[key] for key in DETERMINISTIC_KEYS}
        for run in bench["runs"]
    }


def compare(expected: dict, actual: dict) -> list[str]:
    """Human-readable mismatch lines; empty means pass.

    Counter equivalence delegates to ``repro.obs.trend.counter_drift``
    with a zero budget; ``results``/``seed`` stay plain equality.
    """
    problems = []
    for name in sorted(expected):
        if name not in actual:
            problems.append(f"{name}: missing from the generated bench")
            continue
        drifted = counter_drift(
            expected[name]["counters"], actual[name]["counters"]
        )
        for counter, (old, new) in drifted.items():
            problems.append(
                f"{name}: counter {counter!r} drifted\n"
                f"  expected: {old:g}\n"
                f"  actual:   {new:g}"
            )
        for key in ("results", "seed"):
            if expected[name][key] != actual[name][key]:
                problems.append(
                    f"{name}: {key} mismatch\n"
                    f"  expected: {expected[name][key]}\n"
                    f"  actual:   {actual[name][key]}"
                )
    extra = sorted(set(actual) - set(expected))
    if extra:
        problems.append(
            f"unexpected cases (regenerate with --update?): {extra}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", help="bench_to_json.py output to check")
    parser.add_argument(
        "--expected",
        default=str(EXPECTED_PATH),
        help="expected-counters file (default: benchmarks/expected_counters.json)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the expected file from the given bench instead of checking",
    )
    args = parser.parse_args(argv)

    actual = extract(json.loads(Path(args.bench).read_text()))
    if args.update:
        Path(args.expected).write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        print(f"{len(actual)} cases -> {args.expected}")
        return 0

    expected = json.loads(Path(args.expected).read_text())
    problems = compare(expected, actual)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(f"all {len(expected)} cases match {args.expected}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
