"""Ablation — phase-1 MIS order (DESIGN.md section 6).

The guarantees only need *some* 2-hop-separated MIS; this ablation
measures how the selection order (BFS first-fit of [10], max-degree
greedy, lexicographic, random) affects |I| and the final CDS size when
phase 2 is the Section IV greedy.
"""

import pytest

from repro.cds import greedy_connectors, steiner_connectors
from repro.graphs import is_maximal_independent_set
from repro.mis import (
    first_fit_mis,
    lexicographic_mis,
    max_degree_mis,
    random_order_mis,
)

ORDERS = {
    "bfs-first-fit": lambda g: list(first_fit_mis(g).nodes),
    "max-degree": max_degree_mis,
    "lexicographic": lexicographic_mis,
    "random": lambda g: random_order_mis(g, seed=0),
}


@pytest.mark.parametrize("order", list(ORDERS))
def test_mis_order_to_cds(benchmark, order, udg60):
    def build():
        mis = ORDERS[order](udg60)
        try:
            connectors, _, _ = greedy_connectors(udg60, mis)
        except ValueError:
            # Only the BFS first-fit order guarantees the 2-hop
            # separation Lemma 9 needs; other orders occasionally leave
            # dominator components 3 hops apart, where the Steiner
            # bridge still applies.
            connectors = steiner_connectors(udg60, mis)
        return mis, connectors

    mis, connectors = benchmark(build)
    assert is_maximal_independent_set(udg60, mis)
    total = len(set(mis) | set(connectors))
    # Sanity band: every order yields a backbone within 3x of |I|.
    assert len(mis) <= total <= 3 * len(mis)
