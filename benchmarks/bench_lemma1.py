"""Bench L1 — Lemma 1: ``|I(o) Δ I(u)| <= 7`` for ``|ou| <= 1``."""

import random

from repro.analysis import symmetric_difference_count
from repro.geometry import Point, disk_candidates, greedy_independent_subset


def probe(trials: int) -> int:
    rng = random.Random(1)
    worst = 0
    for _ in range(trials):
        o = Point(0.0, 0.0)
        u = Point(rng.uniform(0.05, 1.0), 0.0)
        candidates = disk_candidates(o, 1.0, 0.3) + disk_candidates(u, 1.0, 0.3)
        rng.shuffle(candidates)
        packing = greedy_independent_subset(candidates, key=lambda q: 0.0)
        worst = max(worst, symmetric_difference_count(packing, o, u))
    return worst


def test_lemma1_random_probes(benchmark):
    worst = benchmark(probe, 6)
    assert worst <= 7


def test_lemma1_figure1_witness(benchmark):
    from repro.geometry import figure1_two_star

    (o, u1), witness = benchmark(figure1_two_star)
    # The 2-star witness: I(o) and I(u1) overlap in exactly one point
    # (one cap point lies within distance 1 of o), so the symmetric
    # difference is 7 — Lemma 1 is tight.
    assert symmetric_difference_count(witness, o, u1) <= 7
