"""Extension bench — dynamic maintenance: local repair vs full rebuild.

Measures the cost of one churn event handled by local repair against a
from-scratch reconstruction, and checks the repair's quality (slack
stays small over a churn burst).
"""

import random

from repro.cds import DynamicCDS, greedy_connector_cds
from repro.geometry import Point
from repro.graphs import random_connected_udg


def make_dynamic(n=60, seed=4):
    _, g = random_connected_udg(n, 5.8, seed=seed)
    return DynamicCDS(g)


def churn_burst(dynamic, events, seed=0):
    rng = random.Random(seed)
    done = 0
    while done < events:
        if rng.random() < 0.5 and len(dynamic.graph) > 10:
            victim = rng.choice(sorted(dynamic.graph.nodes()))
            try:
                dynamic.remove_node(victim)
                done += 1
            except ValueError:
                continue
        else:
            base = rng.choice(sorted(dynamic.graph.nodes()))
            new = Point(base.x + rng.uniform(-0.8, 0.8), base.y + rng.uniform(-0.8, 0.8))
            if new in dynamic.graph:
                continue
            in_range = [v for v in dynamic.graph.nodes() if v.distance_to(new) <= 1.0]
            if not in_range:
                continue
            dynamic.add_node(new, in_range)
            done += 1
    return dynamic


def test_local_repair_burst(benchmark):
    def run():
        dynamic = make_dynamic()
        churn_burst(dynamic, events=20)
        return dynamic

    dynamic = benchmark(run)
    assert dynamic.is_valid()


def test_rebuild_per_event(benchmark):
    # The naive alternative: rebuild from scratch after every event.
    def run():
        dynamic = make_dynamic()
        rng = random.Random(0)
        for _ in range(20):
            churn_burst(dynamic, events=1, seed=rng.randint(0, 10**6))
            dynamic.rebuild()
        return dynamic

    dynamic = benchmark(run)
    assert dynamic.is_valid()


def test_repair_quality_stays_close_to_fresh():
    dynamic = make_dynamic()
    churn_burst(dynamic, events=30)
    assert dynamic.is_valid()
    fresh = greedy_connector_cds(dynamic.graph).size
    assert dynamic.size <= 2.0 * fresh + 2
