"""Extension bench — the d-hop CDS size curve.

Backbone size as a function of the domination radius d: the trade
between backbone overhead and access-path length.
"""

import pytest

from repro.cds import d_hop_cds, is_d_hop_cds


@pytest.mark.parametrize("d", [1, 2, 3])
def test_dhop_construction(benchmark, d, udg60):
    result = benchmark(d_hop_cds, udg60, d)
    assert is_d_hop_cds(udg60, result.nodes, d)


def test_size_curve_monotone(udg60):
    sizes = {d: d_hop_cds(udg60, d).size for d in (1, 2, 3)}
    assert sizes[1] >= sizes[2] >= sizes[3]
