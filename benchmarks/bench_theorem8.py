"""Bench T8 — Theorem 8: WAF ratio <= 7 1/3."""

from repro.cds import waf_cds
from repro.cds.bounds import waf_bound_this_paper
from repro.experiments import get_experiment


def test_waf_small(benchmark, udg20, udg20_gamma):
    result = benchmark(waf_cds, udg20)
    assert result.is_valid(udg20)
    assert result.size <= float(waf_bound_this_paper(udg20_gamma))


def test_waf_medium(benchmark, udg60):
    result = benchmark(waf_cds, udg60)
    assert result.is_valid(udg60)


def test_waf_large(benchmark, udg150):
    result = benchmark(waf_cds, udg150)
    assert result.is_valid(udg150)


def test_theorem8_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("T8")(sizes=(12, 16), seeds=3),
        rounds=1,
        iterations=1,
    )
    assert result.passed
