"""Bench W — Wegner's theorem: <= 21 points at pairwise distance >= 1
in a radius-2 disk (used by Theorem 3's ``n >= 6`` cap)."""

from repro.geometry import (
    Point,
    WEGNER_RADIUS2_CAPACITY,
    disk_candidates,
    greedy_independent_subset,
    hexagonal_points_in_disk,
)


def test_hexagonal_witness(benchmark):
    pts = benchmark(hexagonal_points_in_disk, Point(0.0, 0.0), 2.0, 1.0)
    assert len(pts) == 19  # classic lower-bound witness
    assert len(pts) <= WEGNER_RADIUS2_CAPACITY


def test_grid_search_respects_cap(benchmark):
    def search():
        candidates = disk_candidates(Point(0.0, 0.0), 2.0, 0.22)
        return greedy_independent_subset(candidates)

    packing = benchmark(search)
    assert len(packing) <= WEGNER_RADIUS2_CAPACITY
