"""Bench L2 — Lemma 2: ``|(∪_j I(u_j)) \\ I(o)| <= 11`` under the
private-point premise, probed with randomized maximal packings."""

import random

from repro.analysis import lemma2_quantity
from repro.geometry import Point, disk_candidates, greedy_independent_subset


def probe(trials: int) -> int:
    rng = random.Random(2)
    worst = 0
    for _ in range(trials):
        o = Point(0.0, 0.0)
        others = [
            Point.polar(rng.uniform(0.3, 1.0), rng.uniform(0.0, 6.283))
            for _ in range(3)
        ]
        candidates = disk_candidates(o, 1.0, 0.3)
        for u in others:
            candidates.extend(disk_candidates(u, 1.0, 0.3))
        rng.shuffle(candidates)
        packing = greedy_independent_subset(candidates, key=lambda q: 0.0)
        count, premise = lemma2_quantity(packing, o, others)
        if premise:
            worst = max(worst, count)
    return worst


def test_lemma2_random_probes(benchmark):
    worst = benchmark(probe, 5)
    assert worst <= 11
