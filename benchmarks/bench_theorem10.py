"""Bench T10 — Theorem 10: greedy-connector ratio <= 6 7/18.

Also re-derives the C1/C2/C3 prefix decomposition on the benchmarked
instance — the proof machinery, not just the headline size.
"""

from repro.analysis import prefix_decomposition
from repro.cds import greedy_connector_cds
from repro.cds.bounds import greedy_bound_this_paper
from repro.experiments import get_experiment


def test_greedy_small(benchmark, udg20, udg20_gamma):
    result = benchmark(greedy_connector_cds, udg20)
    assert result.is_valid(udg20)
    assert result.size <= float(greedy_bound_this_paper(udg20_gamma))
    decomposition = prefix_decomposition(result.meta["q_history"], udg20_gamma)
    assert all(check.holds for check in decomposition.checks())


def test_greedy_medium(benchmark, udg60):
    result = benchmark(greedy_connector_cds, udg60)
    assert result.is_valid(udg60)


def test_greedy_large(benchmark, udg150):
    result = benchmark(greedy_connector_cds, udg150)
    assert result.is_valid(udg150)


def test_theorem10_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("T10")(sizes=(12, 16), seeds=3),
        rounds=1,
        iterations=1,
    )
    assert result.passed
