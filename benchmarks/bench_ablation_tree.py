"""Ablation — the phase-1 spanning tree: BFS (per [10]) vs DFS.

Section III allows an arbitrary rooted spanning tree; BFS trees keep
tree depth equal to hop distance, which empirically yields fewer
connectors than DFS trees (whose long spines inflate |I \\ I(s)|).
"""

import pytest

from repro.cds import waf_cds

KINDS = ["bfs", "dfs"]


@pytest.mark.parametrize("kind", KINDS)
def test_waf_tree_kind(benchmark, kind, udg60):
    result = benchmark(waf_cds, udg60, None, kind)
    assert result.is_valid(udg60)


def test_bfs_not_worse_than_dfs_on_average(udg60, udg150):
    total = {"bfs": 0, "dfs": 0}
    for g in (udg60, udg150):
        for kind in KINDS:
            total[kind] += waf_cds(g, tree_kind=kind).size
    assert total["bfs"] <= total["dfs"] + 2
