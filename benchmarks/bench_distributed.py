"""Bench DIST — distributed pipelines: message and time complexity.

Asserts the structural counts of [10]'s phases (MIS = 2n transmissions,
BFS tree = n) and times the full pipelines — plus the batched-vs-
reference engine comparison and the MIS priority variants on a
1000-node fixture (the scaling story continues in ``bench_to_json``'s
``sim_*`` cases up to 10^5; see BENCH_pr8.json).
"""

import pytest

from repro.distributed import (
    RadioTopology,
    build_bfs_tree,
    distributed_greedy_cds,
    distributed_waf_cds,
    elect_leader,
    elect_mis,
)
from repro.experiments import get_experiment
from repro.experiments.instances import int_labeled
from repro.graphs import random_connected_udg


def make_graph(n, side, seed):
    _, graph = random_connected_udg(n, side, seed=seed)
    return int_labeled(graph)


def test_distributed_waf_pipeline(benchmark):
    g = make_graph(40, 5.0, 1)
    result, metrics = benchmark(distributed_waf_cds, g)
    assert result.is_valid(g)
    assert metrics.transmissions > 0


def test_distributed_greedy_pipeline(benchmark):
    g = make_graph(40, 5.0, 1)
    result, _ = benchmark(distributed_greedy_cds, g)
    assert result.is_valid(g)


def test_mis_phase_message_optimality(benchmark):
    g = make_graph(50, 5.5, 2)
    leader, _ = elect_leader(g)
    tree, tree_metrics = build_bfs_tree(g, leader)
    assert tree_metrics.transmissions == len(g)

    def mis_phase():
        return elect_mis(g, tree)

    _, metrics = benchmark(mis_phase)
    assert metrics.transmissions == 2 * len(g)


@pytest.mark.parametrize("engine", ["batched", "reference"])
def test_mis_engine_comparison(benchmark, engine):
    """The PR 8 tentpole on one mid-size fixture: identical metrics,
    different wall clock."""
    g = make_graph(1000, 18.0, 4)
    topo = RadioTopology(g)
    tree, _ = build_bfs_tree(g, 0, engine=engine, topology=topo)

    def mis_phase():
        return elect_mis(g, tree, engine=engine, topology=topo)

    mis, metrics = benchmark(mis_phase)
    assert metrics.transmissions == 2 * len(g)
    assert len(mis) > 0


@pytest.mark.parametrize("priority", ["bfs-rank", "degree"])
def test_mis_priority_variants(benchmark, priority):
    g = make_graph(1000, 18.0, 4)
    topo = RadioTopology(g)
    tree, _ = build_bfs_tree(g, 0, topology=topo)

    def mis_phase():
        return elect_mis(g, tree, priority=priority, topology=topo)

    mis, metrics = benchmark(mis_phase)
    assert metrics.transmissions == 2 * len(g)


def test_dist_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("DIST")(sizes=(10, 16)),
        rounds=1,
        iterations=1,
    )
    assert result.passed
