"""Bench DIST — distributed pipelines: message and time complexity.

Asserts the structural counts of [10]'s phases (MIS = 2n transmissions,
BFS tree = n) and times the full pipelines.
"""

from repro.distributed import (
    build_bfs_tree,
    distributed_greedy_cds,
    distributed_waf_cds,
    elect_leader,
    elect_mis,
)
from repro.experiments import get_experiment
from repro.experiments.instances import int_labeled
from repro.graphs import random_connected_udg


def make_graph(n, side, seed):
    _, graph = random_connected_udg(n, side, seed=seed)
    return int_labeled(graph)


def test_distributed_waf_pipeline(benchmark):
    g = make_graph(40, 5.0, 1)
    result, metrics = benchmark(distributed_waf_cds, g)
    assert result.is_valid(g)
    assert metrics.transmissions > 0


def test_distributed_greedy_pipeline(benchmark):
    g = make_graph(40, 5.0, 1)
    result, _ = benchmark(distributed_greedy_cds, g)
    assert result.is_valid(g)


def test_mis_phase_message_optimality(benchmark):
    g = make_graph(50, 5.5, 2)
    leader, _ = elect_leader(g)
    tree, tree_metrics = build_bfs_tree(g, leader)
    assert tree_metrics.transmissions == len(g)

    def mis_phase():
        return elect_mis(g, tree)

    _, metrics = benchmark(mis_phase)
    assert metrics.transmissions == 2 * len(g)


def test_dist_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("DIST")(sizes=(10, 16)),
        rounds=1,
        iterations=1,
    )
    assert result.passed
