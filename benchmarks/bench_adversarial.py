"""Bench ADV — adversarial ratio search cost and outcome shape."""

from repro.analysis import adversarial_ratio_search
from repro.cds import greedy_connector_cds, waf_cds
from repro.cds.bounds import greedy_bound_this_paper, waf_bound_this_paper


def test_search_waf(benchmark):
    found = benchmark.pedantic(
        lambda: adversarial_ratio_search(11, waf_cds, iterations=80, seed=7),
        rounds=1,
        iterations=1,
    )
    assert 1.0 < found.best_ratio <= float(waf_bound_this_paper(1))


def test_search_greedy(benchmark):
    found = benchmark.pedantic(
        lambda: adversarial_ratio_search(
            11, greedy_connector_cds, iterations=80, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    assert 1.0 < found.best_ratio <= float(greedy_bound_this_paper(1))
