"""Bench L9 — Lemma 9: gain floor along the greedy trajectory.

While ``q > 1`` some node has gain at least
``max(1, ceil(q / gamma_c) - 1)``; the benchmark times a full greedy
run while asserting the floor at every step.
"""

from repro.cds import greedy_connector_cds
from repro.cds.bounds import lemma9_min_gain


def run_and_check(graph, gamma_c):
    result = greedy_connector_cds(graph)
    q = result.meta["q_history"]
    for i, gain in enumerate(result.meta["gain_history"]):
        assert gain >= lemma9_min_gain(q[i], gamma_c)
    return result


def test_lemma9_along_trace(benchmark, udg20, udg20_gamma):
    result = benchmark(run_and_check, udg20, udg20_gamma)
    assert result.is_valid(udg20)


def test_lemma9_first_step_scales_with_mis(benchmark, udg60):
    # The first selection's gain is >= ceil(|I| / gamma_c) - 1 >= 1.
    result = benchmark(greedy_connector_cds, udg60)
    gains = result.meta["gain_history"]
    if gains:
        assert gains[0] >= 1
