"""Ablation — gain tie-breaking in the Section IV greedy.

The paper specifies "maximum gain" but not how to resolve ties; this
ablation compares min-id (library default), max-id and highest-degree
tie-breaking on the same instance.
"""

import pytest

from repro.cds import greedy_connector_cds

TIE_BREAKS = ["min", "max", "degree"]


@pytest.mark.parametrize("tie_break", TIE_BREAKS)
def test_tiebreak_variants(benchmark, tie_break, udg60):
    result = benchmark(greedy_connector_cds, udg60, None, tie_break)
    assert result.is_valid(udg60)


def test_tiebreaks_agree_on_size_within_slack(udg60):
    sizes = {
        tb: greedy_connector_cds(udg60, tie_break=tb).size for tb in TIE_BREAKS
    }
    # Tie-breaking is second-order: sizes differ by at most a few nodes.
    assert max(sizes.values()) - min(sizes.values()) <= 3, sizes


def test_invalid_tiebreak_rejected(udg20):
    with pytest.raises(ValueError):
        greedy_connector_cds(udg20, tie_break="coin-flip")
