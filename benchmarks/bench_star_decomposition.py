"""Bench L4 — Lemma 4: nontrivial star decomposition of connected sets.

Times the constructive decomposition on growing random connected sets
and asserts the lemma's guarantee (no singleton stars).
"""

import pytest

from repro.geometry import is_nontrivial_star_decomposition, star_decomposition
from tests.geometry.test_stars import random_connected_points


@pytest.mark.parametrize("n", [10, 25, 50])
def test_star_decomposition_scaling(benchmark, n):
    pts = random_connected_points(n, seed=n)
    decomposition = benchmark(star_decomposition, pts)
    assert is_nontrivial_star_decomposition(decomposition, pts)
