"""Bench S5 — Section V area-argument machinery (Funke et al. claim).

Times the clipped Voronoi cell-area computation on the Figure 2 chain
and asserts the internal consistency the experiment relies on.
"""

from repro.experiments import get_experiment
from repro.geometry import disk_union_area, figure2_linear, voronoi_cell_areas


def test_cell_areas_on_chain(benchmark):
    centers, witness = figure2_linear(5)
    areas = benchmark(voronoi_cell_areas, witness, centers, 1.5, 200)
    omega = disk_union_area(centers, radius=1.5, resolution=200)
    assert abs(sum(areas) - omega) < 0.05 * omega
    assert min(areas) > 0


def test_s5_experiment_shape(benchmark):
    result = benchmark.pedantic(
        lambda: get_experiment("S5")(chain_sizes=(3, 5), resolution=160),
        rounds=1,
        iterations=1,
    )
    assert result.passed
