"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one paper artifact (see the
per-experiment index in DESIGN.md): it asserts the paper's claimed
*shape* (bounds hold, tight constructions achieve their counts, the new
algorithm wins) and times the computation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

The ``obs`` fixture exposes the instrumentation registry to benches
that want to assert operation counts, and ``bench_to_json.py`` (a
plain script, not a pytest bench) exports the standing timing baseline
to ``BENCH_baseline.json`` at the repo root.
"""

from __future__ import annotations

import pytest

from repro.graphs import random_connected_udg


@pytest.fixture()
def obs():
    """The default ``repro.obs`` registry, reset and enabled per test.

    Benches opt in to counter assertions with it::

        def test_case(benchmark, udg60, obs):
            ...
            assert obs.counters()["gain.evaluations"] > 0

    Tracing is restored to its prior state afterwards so timing-only
    benches stay un-instrumented.
    """
    from repro.obs import OBS

    with OBS.capture() as registry:
        yield registry


@pytest.fixture(scope="session")
def udg20():
    """A connected 20-node UDG (exact optimum affordable)."""
    return random_connected_udg(20, 3.8, seed=1)[1]


@pytest.fixture(scope="session")
def udg60():
    """A connected 60-node UDG (heuristic scale)."""
    return random_connected_udg(60, 6.2, seed=2)[1]


@pytest.fixture(scope="session")
def udg150():
    """A connected 150-node UDG (scaling benchmarks)."""
    return random_connected_udg(150, 8.0, seed=3)[1]


@pytest.fixture(scope="session")
def udg20_gamma(udg20):
    """The exact connected domination number of ``udg20``."""
    from repro.cds import connected_domination_number

    return connected_domination_number(udg20)
