"""Scaling benchmarks: the full pipeline at realistic network sizes.

The grid-bucketed UDG builder and the incremental gain tracker are
what make the library usable beyond toy sizes; this bench times the
construction pipeline (points → UDG → backbone) at n up to 2000 and
asserts the outputs stay valid.
"""

import os

import pytest

from repro.cds import greedy_connector_cds, waf_cds
from repro.graphs import (
    is_connected,
    largest_component_udg,
    uniform_points,
    unit_disk_graph,
)

SIZES = [200, 500, 1000, 2000]


def _instance(n):
    # Density chosen so the giant component is essentially everything.
    side = (3.1416 * n / 9.0) ** 0.5
    pts = uniform_points(n, side, seed=17)
    kept, graph = largest_component_udg(pts)
    assert len(graph) > 0.9 * n
    return graph


@pytest.mark.parametrize("n", SIZES)
def test_udg_build_scaling(benchmark, n):
    side = (3.1416 * n / 9.0) ** 0.5
    pts = uniform_points(n, side, seed=17)
    g = benchmark(unit_disk_graph, pts)
    assert len(g) == n


@pytest.mark.parametrize("n", [200, 500, 1000])
def test_waf_scaling(benchmark, n):
    g = _instance(n)
    result = benchmark(waf_cds, g)
    assert result.is_valid(g)


@pytest.mark.parametrize("n", [200, 500, 1000])
def test_greedy_scaling(benchmark, n):
    g = _instance(n)
    result = benchmark(greedy_connector_cds, g)
    assert result.is_valid(g)


def test_largest_instance_end_to_end():
    g = _instance(2000)
    assert is_connected(g)
    waf = waf_cds(g)
    greedy = greedy_connector_cds(g)
    assert waf.is_valid(g)
    assert greedy.is_valid(g)
    assert greedy.size <= waf.size + 5


# --- large-instance tier (PR 3) -------------------------------------
#
# Everything below is marked slow and excluded from tier-1 runs (see
# the addopts in pyproject.toml); CI runs it in a separate
# non-blocking job.  These sizes are only practical on the bitset
# kernel — the greedy at n=10000 takes ~4s on the CSR kernel and
# ~0.2s on bitsets.


@pytest.mark.slow
@pytest.mark.parametrize("n", [4000, 10000])
def test_greedy_bitset_scaling(benchmark, n):
    g = _instance(n)
    result = benchmark(greedy_connector_cds, g, kernel="bitset")
    assert result.is_valid(g)


@pytest.mark.slow
@pytest.mark.parametrize("n", [4000, 10000])
def test_waf_large_scaling(benchmark, n):
    g = _instance(n)
    result = benchmark(waf_cds, g)
    assert result.is_valid(g)


@pytest.mark.slow
def test_kernels_agree_at_scale():
    # The equivalence suites (tests/cds/) cover n <= 46 instances
    # exhaustively; this locks the kernels together once at a size
    # where word-level bugs (multi-word masks, dense bit_indices
    # path) and vector bugs (batched rescore, frontier dedup) would
    # actually surface.
    g = _instance(4000)
    indexed = greedy_connector_cds(g, kernel="indexed")
    bitset = greedy_connector_cds(g, kernel="bitset")
    array = greedy_connector_cds(g, kernel="array")
    assert indexed.nodes == bitset.nodes == array.nodes
    assert indexed.meta == bitset.meta == array.meta


@pytest.mark.slow
def test_udg10000_all_solvers_complete():
    from repro.cds import steiner_cds

    g = _instance(10000)
    waf = waf_cds(g)
    greedy = greedy_connector_cds(g, kernel="bitset")
    steiner = steiner_cds(g)
    assert waf.is_valid(g)
    assert greedy.is_valid(g)
    assert steiner.is_valid(g)


# --- vector-kernel tier (PR 7) ---------------------------------------
#
# n = 10^5 runs in the slow lane on the array kernel only: the bitset
# kernel's masks cost n^2/8 = 1.25 GB at this size and its greedy is
# an order of magnitude slower (see docs/performance.md for the
# measured crossover).  n = 10^6 would hold the lane for minutes even
# vectorized, so it is opt-in: set REPRO_SCALE_XL=1 to run it.

_XL = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_XL") != "1",
    reason="set REPRO_SCALE_XL=1 to run the 10^6-node tier (minutes, ~4 GB)",
)


@pytest.mark.slow
def test_udg100000_array_build_and_greedy():
    # Matches the BENCH_pr7.json udg100000 fixture parameters.
    pts = uniform_points(100000, 140.0, seed=7)
    g = unit_disk_graph(pts)  # dispatches to the vectorized builder
    assert is_connected(g)
    result = greedy_connector_cds(g, kernel="array")
    assert result.is_valid(g)
    auto = greedy_connector_cds(g)  # auto resolves to the array kernel
    assert auto.nodes == result.nodes


@pytest.mark.slow
@_XL
def test_udg1000000_build_and_greedy_complete():
    # Matches the BENCH_pr7.json udg1000000 fixture parameters.
    pts = uniform_points(1000000, 380.0, seed=8)
    g = unit_disk_graph(pts)
    assert is_connected(g)
    result = greedy_connector_cds(g)
    assert result.is_valid(g)
