"""Ablation — distributed MIS election: rank cascade [10] vs Luby.

The rank cascade is message-optimal (2n) but Theta(n) rounds on chains;
Luby pays more messages for O(log n) expected rounds.  Both feed the
same phase-2 machinery.
"""

from repro.distributed import build_bfs_tree, elect_mis
from repro.distributed.luby import luby_mis
from repro.graphs import Graph


def chain(n):
    return Graph(edges=[(i, i + 1) for i in range(n - 1)])


def test_rank_cascade_on_chain(benchmark):
    g = chain(80)

    def run():
        tree, tree_metrics = build_bfs_tree(g, 0)
        mis, metrics = elect_mis(g, tree)
        return mis, tree_metrics.merge(metrics)

    mis, metrics = benchmark(run)
    assert metrics.transmissions <= 3 * len(g)
    assert metrics.rounds >= len(g) / 2  # the cascade crawls the chain


def test_luby_on_chain(benchmark):
    g = chain(80)
    mis, metrics = benchmark(luby_mis, g, 1)
    assert metrics.rounds <= 30  # O(log n) phases in practice
